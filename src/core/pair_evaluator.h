// The per-pair Equation 3 evaluation shared by the Algorithm 1 engines
// (ComputeFSim, ComputeTopKPairs): one iterate-loop body that reads
// previous-iteration scores either through the pair-graph CSR neighbor
// index (direct array indexing — the fast path) or through the
// label-check + hash-probe fallback when the index was not materialized.
// Both paths produce bit-identical sums: the index enumerates exactly the
// candidate pairs the fallback's nested loops visit, in the same order.
#ifndef FSIM_CORE_PAIR_EVALUATOR_H_
#define FSIM_CORE_PAIR_EVALUATOR_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "core/fsim_config.h"
#include "core/init_value.h"
#include "core/operators.h"
#include "core/pair_store.h"
#include "graph/graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// Evaluates FSim^k(u, v) for maintained pairs against a PairStore's
/// previous-iteration buffer. Stateless between calls except for the
/// caller-owned MatchingScratch, so one instance serves all workers.
class PairEvaluator {
 public:
  PairEvaluator(const Graph& g1, const Graph& g2, const FSimConfig& config,
                const LabelSimilarityCache& lsim, const PairStore& store)
      : g1_(g1),
        g2_(g2),
        config_(config),
        lsim_(lsim),
        store_(store),
        op_(config.operators()),
        label_weight_(1.0 - config.w_out - config.w_in),
        alpha_(config.upper_bound ? config.alpha : 0.0) {}

  /// The Equation 3 value of store pair i from the previous-iteration
  /// scores. Safe to call concurrently with distinct scratches.
  double Evaluate(size_t i, MatchingScratch* scratch) const {
    const NodeId u = store_.U(i);
    const NodeId v = store_.V(i);
    if (config_.pin_diagonal && u == v) return 1.0;
    double out_score = 0.0;
    double in_score = 0.0;
    if (store_.has_neighbor_index()) {
      const double* prev = store_.prev_data();
      const float* pruned = store_.pruned_bounds_data();
      auto score_of = [prev, pruned, this](uint32_t ref) -> double {
        if (ref & kNeighborRefPrunedTag) {
          return alpha_ *
                 static_cast<double>(pruned[ref & ~kNeighborRefPrunedTag]);
        }
        return prev[ref];
      };
      // One evaluation body for both index entry layouts (the packed
      // 8-byte refs of degree-bounded graphs and the wide 12-byte refs).
      auto evaluate_refs = [&](auto out_refs, auto in_refs) {
        if (config_.w_out > 0.0) {
          out_score = DirectionScoreIndexed(op_, config_.matching,
                                            g1_.OutDegree(u), g2_.OutDegree(v),
                                            out_refs, score_of, scratch);
        }
        if (config_.w_in > 0.0) {
          in_score = DirectionScoreIndexed(op_, config_.matching,
                                           g1_.InDegree(u), g2_.InDegree(v),
                                           in_refs, score_of, scratch);
        }
      };
      if (store_.packed_refs()) {
        evaluate_refs(store_.OutRefsPacked(i), store_.InRefsPacked(i));
      } else {
        evaluate_refs(store_.OutRefs(i), store_.InRefs(i));
      }
    } else {
      // Previous-iteration score of (x, y); negative = not mappable under
      // the label constraint. Pairs pruned by the upper bound contribute
      // alpha * bound (0 with the default alpha = 0).
      auto lookup = [this](NodeId x, NodeId y) -> double {
        if (!lsim_.Compatible(g1_.Label(x), g2_.Label(y), config_.theta)) {
          return -1.0;
        }
        uint32_t idx = store_.Find(x, y);
        if (idx != FlatPairMap::kNotFound) return store_.prev(idx);
        if (alpha_ > 0.0) return alpha_ * store_.PrunedUpperBound(x, y);
        return 0.0;
      };
      if (config_.w_out > 0.0) {
        out_score = DirectionScore(op_, config_.matching, g1_.OutNeighbors(u),
                                   g2_.OutNeighbors(v), lookup, scratch);
      }
      if (config_.w_in > 0.0) {
        in_score = DirectionScore(op_, config_.matching, g1_.InNeighbors(u),
                                  g2_.InNeighbors(v), lookup, scratch);
      }
    }
    return config_.w_out * out_score + config_.w_in * in_score +
           label_weight_ * LabelTerm(u, v);
  }

 private:
  double LabelTerm(NodeId u, NodeId v) const {
    return LabelTermValue(config_, lsim_, g1_.Label(u), g2_.Label(v));
  }

  const Graph& g1_;
  const Graph& g2_;
  const FSimConfig& config_;
  const LabelSimilarityCache& lsim_;
  const PairStore& store_;
  const OperatorConfig op_;
  const double label_weight_;
  const double alpha_;
};

/// Cache-line-padded per-worker accumulator (avoids false sharing in the
/// parallel delta reduction).
struct alignas(64) WorkerMaxDelta {
  double value = 0.0;
};

/// One synchronous Jacobi sweep of Algorithm 1: evaluates every maintained
/// pair against the previous-iteration buffer, writes the current buffer,
/// and returns max |FSim^k - FSim^{k-1}|. The caller owns the per-worker
/// scratch/delta vectors (sized to the pool's thread count) and the
/// SwapBuffers that follows. Chunks of 64 pairs balance skewed neighborhood
/// sizes against chunk-handoff cost.
inline double RunIterateSweep(ThreadPool& pool, PairStore& store,
                              const PairEvaluator& evaluator,
                              std::vector<MatchingScratch>& scratch,
                              std::vector<WorkerMaxDelta>& worker_delta) {
  constexpr size_t kIterateGrain = 64;
  for (auto& d : worker_delta) d.value = 0.0;
  pool.ParallelForChunked(
      store.size(), kIterateGrain, [&](int worker, size_t begin, size_t end) {
        MatchingScratch* worker_scratch = &scratch[worker];
        double local_delta = 0.0;
        for (size_t i = begin; i < end; ++i) {
          const double value = evaluator.Evaluate(i, worker_scratch);
          store.set_curr(i, value);
          local_delta = std::max(local_delta, std::abs(value - store.prev(i)));
        }
        if (local_delta > worker_delta[worker].value) {
          worker_delta[worker].value = local_delta;
        }
      });
  double max_delta = 0.0;
  for (const auto& d : worker_delta) max_delta = std::max(max_delta, d.value);
  return max_delta;
}

}  // namespace fsim

#endif  // FSIM_CORE_PAIR_EVALUATOR_H_
