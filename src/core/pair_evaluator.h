// The per-pair Equation 3 evaluation shared by the Algorithm 1 engines
// (ComputeFSim, ComputeTopKPairs): one iterate-loop body that reads
// previous-iteration scores either through the pair-graph CSR neighbor
// index (direct array indexing — the fast path) or through the
// label-check + hash-probe fallback when the index was not materialized.
// Both paths produce bit-identical sums: the index enumerates exactly the
// candidate pairs the fallback's nested loops visit, in the same order.
#ifndef FSIM_CORE_PAIR_EVALUATOR_H_
#define FSIM_CORE_PAIR_EVALUATOR_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/fsim_config.h"
#include "core/init_value.h"
#include "core/operators.h"
#include "core/pair_store.h"
#include "graph/graph.h"
#include "label/label_similarity.h"
#include "obs/trace.h"

namespace fsim {

/// Evaluates FSim^k(u, v) for maintained pairs against a PairStore's
/// previous-iteration buffer. Stateless between calls except for the
/// caller-owned MatchingScratch, so one instance serves all workers.
///
/// This sparse per-pair path always runs the scalar operators; only the
/// dense engine's full-matrix tile loop has a vectorized realization
/// (core/simd/), and the two agree bit-for-bit on the max family — see
/// DirectionScoreGroupedTile (core/operators.h).
class PairEvaluator {
 public:
  PairEvaluator(const Graph& g1, const Graph& g2, const FSimConfig& config,
                const LabelSimilarityCache& lsim, const PairStore& store)
      : g1_(g1),
        g2_(g2),
        config_(config),
        lsim_(lsim),
        store_(store),
        op_(config.operators()),
        label_weight_(1.0 - config.w_out - config.w_in),
        alpha_(config.upper_bound ? config.alpha : 0.0) {}

  /// The Equation 3 value of store pair i from the previous-iteration
  /// scores. Safe to call concurrently with distinct scratches.
  double Evaluate(size_t i, MatchingScratch* scratch) const {
    const NodeId u = store_.U(i);
    const NodeId v = store_.V(i);
    if (config_.pin_diagonal && u == v) return 1.0;
    double out_score = 0.0;
    double in_score = 0.0;
    if (store_.has_neighbor_index()) {
      const double* prev = store_.prev_data();
      const float* pruned = store_.pruned_bounds_data();
      auto score_of = [prev, pruned, this](uint32_t ref) -> double {
        if (ref & kNeighborRefPrunedTag) {
          return alpha_ *
                 static_cast<double>(pruned[ref & ~kNeighborRefPrunedTag]);
        }
        return prev[ref];
      };
      // One evaluation body for both index entry layouts (the packed
      // 8-byte refs of degree-bounded graphs and the wide 12-byte refs).
      auto evaluate_refs = [&](auto out_refs, auto in_refs) {
        if (config_.w_out > 0.0) {
          out_score = DirectionScoreIndexed(op_, config_.matching,
                                            g1_.OutDegree(u), g2_.OutDegree(v),
                                            out_refs, score_of, scratch);
        }
        if (config_.w_in > 0.0) {
          in_score = DirectionScoreIndexed(op_, config_.matching,
                                           g1_.InDegree(u), g2_.InDegree(v),
                                           in_refs, score_of, scratch);
        }
      };
      if (store_.packed_refs()) {
        evaluate_refs(store_.OutRefsPacked(i), store_.InRefsPacked(i));
      } else {
        evaluate_refs(store_.OutRefs(i), store_.InRefs(i));
      }
    } else {
      // Previous-iteration score of (x, y); negative = not mappable under
      // the label constraint. Pairs pruned by the upper bound contribute
      // alpha * bound (0 with the default alpha = 0).
      auto lookup = [this](NodeId x, NodeId y) -> double {
        if (!lsim_.Compatible(g1_.Label(x), g2_.Label(y), config_.theta)) {
          return -1.0;
        }
        uint32_t idx = store_.Find(x, y);
        if (idx != FlatPairMap::kNotFound) return store_.prev(idx);
        if (alpha_ > 0.0) return alpha_ * store_.PrunedUpperBound(x, y);
        return 0.0;
      };
      if (config_.w_out > 0.0) {
        out_score = DirectionScore(op_, config_.matching, g1_.OutNeighbors(u),
                                   g2_.OutNeighbors(v), lookup, scratch);
      }
      if (config_.w_in > 0.0) {
        in_score = DirectionScore(op_, config_.matching, g1_.InNeighbors(u),
                                  g2_.InNeighbors(v), lookup, scratch);
      }
    }
    return config_.w_out * out_score + config_.w_in * in_score +
           label_weight_ * LabelTerm(u, v);
  }

 private:
  double LabelTerm(NodeId u, NodeId v) const {
    return LabelTermValue(config_, lsim_, g1_.Label(u), g2_.Label(v));
  }

  const Graph& g1_;
  const Graph& g2_;
  const FSimConfig& config_;
  const LabelSimilarityCache& lsim_;
  const PairStore& store_;
  const OperatorConfig op_;
  const double label_weight_;
  const double alpha_;
};

/// Cache-line-padded per-worker accumulator (avoids false sharing in the
/// parallel delta reduction).
struct alignas(64) WorkerMaxDelta {
  double value = 0.0;
};

/// Delta-driven active-set scheduling of the Algorithm 1 iterate loop,
/// shared by ComputeFSim and ComputeTopKPairs (docs/performance.md
/// "Active-set iteration"). Each Step() runs one synchronous Jacobi
/// iteration and leaves the store's previous-score buffer holding the
/// complete new state:
///
///  * The first iteration (and every iteration with the active set off or
///    the CSR index absent) is a plain full sweep over all maintained
///    pairs, followed by an O(1) SwapBuffers.
///  * While sweeping, workers stamp the dependents of every changed pair
///    into their FrontierTracker arrays by walking the pair's own CSR
///    spans in reverse: the refs of the in-span are exactly the pairs
///    reading (u, v) through their out-direction, and vice versa (the same
///    double duty the incremental engine's spans serve).
///  * Later iterations evaluate only the built frontier and commit the
///    evaluated entries into the previous buffer (selective forward copy);
///    every frozen pair keeps its score for free. Frontiers at or above
///    FSimConfig::frontier_density_threshold of the store fall back to a
///    full sweep — dense frontiers are cheaper as sweeps.
///
/// In kExact mode a pair is skipped only when *none* of its inputs changed
/// at all, which (with the deterministic operators) is provably
/// bit-identical to running full sweeps: identical inputs produce the
/// identical value, the observed max delta equals the true max delta
/// (frozen pairs have exactly zero change), so scores, iteration count and
/// convergence decision all coincide. kTolerance additionally skips pairs
/// whose accumulated input influence — Σ w± · c/Ωχ · |Δ| with the
/// sharpened per-pair factors of core/incremental.h — stays below
/// frontier_tolerance, trading bounded error for fewer evaluations.
class ActiveSetDriver {
 public:
  /// How a changed pair's dependents are found from its own spans.
  enum class ReverseDepScheme {
    /// In-lists are the transpose of out-lists (every GraphBuilder/IO
    /// graph): dependents reading i through their out-direction are the
    /// refs of i's in-span, and vice versa.
    kTranspose,
    /// The AsUndirected adaptation (§4.3: symmetric out-adjacency, empty
    /// in-lists): u ∈ N+(x) ⟺ x ∈ N+(u), so the out-span is its own
    /// dependent list; the in-direction reads empty sets everywhere and
    /// never changes.
    kSymmetricOut,
  };

  ActiveSetDriver(ThreadPool& pool, PairStore& store,
                  const PairEvaluator& evaluator, const Graph& g1,
                  const Graph& g2, const FSimConfig& config)
      : pool_(pool),
        store_(store),
        evaluator_(evaluator),
        config_(config),
        scratch_(static_cast<size_t>(pool.num_threads())),
        worker_stats_(static_cast<size_t>(pool.num_threads())) {
    mode_ = ActiveSetMode::kOff;
    if (store.has_neighbor_index() && store.reverse_spans() &&
        config.w_out + config.w_in > 0.0) {
      const bool transpose = g1.NumInEdges() == g1.NumEdges() &&
                             g2.NumInEdges() == g2.NumEdges();
      const bool symmetric_out =
          g1.NumInEdges() == 0 && g2.NumInEdges() == 0;
      if (transpose || symmetric_out) {
        mode_ = config.active_set;
        scheme_ = transpose ? ReverseDepScheme::kTranspose
                            : ReverseDepScheme::kSymmetricOut;
      }
      // Neither shape (partially populated in-lists that are not the
      // transpose) has no sound reverse walk; stay on full sweeps.
    }
    if (mode_ == ActiveSetMode::kTolerance) {
      const OperatorConfig op = config.operators();
      influence_out_.resize(store.size());
      influence_in_.resize(store.size());
      for (size_t i = 0; i < store.size(); ++i) {
        const NodeId u = store.U(i);
        const NodeId v = store.V(i);
        influence_out_[i] = static_cast<float>(
            PairInfluenceFactor(op, g1.OutDegree(u), g2.OutDegree(v)));
        influence_in_[i] = static_cast<float>(
            PairInfluenceFactor(op, g1.InDegree(u), g2.InDegree(v)));
      }
    }
    if (mode_ != ActiveSetMode::kOff) {
      tracker_.Init(store.size(), pool.num_threads(),
                    mode_ == ActiveSetMode::kTolerance);
      marking_ = config.active_set_activation_fraction == 0.0;
    }
  }

  /// Runs one iteration (frontier or full sweep per the policy above) and
  /// returns max |FSim^k - FSim^{k-1}| over the evaluated pairs — in exact
  /// mode, exactly the full sweep's max delta.
  double Step() {
    ++iter_;
    // A frontier is only sound when the *previous* sweep marked dependents
    // (see marking_ below); density decides whether it is worth indirect
    // evaluation.
    bool full = true;
    if (can_build_frontier_) {
      Timer build_timer;
      FSIM_TRACE_SPAN("engine.frontier_build");
      tracker_.BuildNext(pool_, config_.frontier_tolerance,
                         last_was_full_sweep_, &frontier_);
      frontier_build_seconds_ += build_timer.Seconds();
      full = static_cast<double>(frontier_.size()) >=
             config_.frontier_density_threshold *
                 static_cast<double>(store_.size());
    }
    if (marking_) tracker_.BeginIteration();
    for (auto& w : worker_stats_) w = WorkerSweepStats{};
    const size_t iterate_grain = config_.iterate_grain;
    if (full) {
      FSIM_TRACE_SPAN_ARG("engine.sweep.full", store_.size());
      pool_.ParallelForChunked(
          store_.size(), iterate_grain,
          [&](int worker, size_t begin, size_t end) {
            MatchingScratch* scratch = &scratch_[worker];
            WorkerSweepStats local;
            for (size_t i = begin; i < end; ++i) {
              EvaluatePair(worker, i, scratch, &local);
            }
            Fold(worker, local);
          });
      store_.SwapBuffers();
      ++full_sweeps_;
      last_evaluated_ = store_.size();
    } else {
      FSIM_TRACE_SPAN_ARG("engine.sweep.frontier", frontier_.size());
      // Priority draining: a pair's evaluation cost is dominated by the
      // neighbor refs it walks, so RefSpanTotal is the weight. Exact-mode
      // bit-identity across thread counts is unaffected — evaluations are
      // Jacobi (all reads hit prev_) and the reductions below are
      // order-independent.
      pool_.ParallelForFrontier(
          frontier_,
          [this](uint32_t i) {
            return static_cast<float>(store_.RefSpanTotal(i));
          },
          iterate_grain,
          [&](int worker, std::span<const uint32_t> ids) {
            MatchingScratch* scratch = &scratch_[worker];
            WorkerSweepStats local;
            for (uint32_t i : ids) EvaluatePair(worker, i, scratch, &local);
            Fold(worker, local);
          });
      // Selective forward copy, after the sweep's last read of prev_
      // (Jacobi semantics: every evaluation above saw the old state).
      constexpr size_t kCommitGrain = 4096;
      FSIM_TRACE_SPAN("engine.commit");
      pool_.ParallelForChunked(
          frontier_.size(), kCommitGrain,
          [&](int /*worker*/, size_t begin, size_t end) {
            for (size_t k = begin; k < end; ++k) {
              store_.CommitPair(frontier_[k]);
            }
          });
      last_evaluated_ = frontier_.size();
    }
    total_evaluated_ += last_evaluated_;
    last_was_full_sweep_ = full;
    double max_delta = 0.0;
    size_t freeze_signal = 0;
    uint64_t dep_bound = 0;
    for (const auto& w : worker_stats_) {
      max_delta = std::max(max_delta, w.max_delta);
      freeze_signal += w.freeze_signal;
      dep_bound += w.dep_bound;
    }
    // Marks from this sweep feed the next frontier; once the signal says a
    // frontier would skip at least active_set_activation_fraction of the
    // pairs, start paying for marking — and never stop, since a sparse
    // sweep's skipped pairs depend on the marks staying complete. Exact
    // mode predicts the frontier by the changed pairs' dependent cover;
    // tolerance mode by the fraction of sub-tolerance deltas.
    can_build_frontier_ = marking_;
    if (mode_ != ActiveSetMode::kOff && !marking_) {
      const double n = static_cast<double>(store_.size());
      if (mode_ == ActiveSetMode::kExact) {
        marking_ = static_cast<double>(dep_bound) <=
                   (1.0 - config_.active_set_activation_fraction) * n;
      } else {
        // A frontier only beats a full sweep below the density threshold,
        // which needs at least (1 - threshold) · n skippable pairs — so
        // wait for that many sub-tolerance deltas before paying for marks.
        const double needed =
            std::max(config_.active_set_activation_fraction *
                         static_cast<double>(last_evaluated_),
                     (1.0 - config_.frontier_density_threshold) * n);
        marking_ = static_cast<double>(freeze_signal) >= needed;
      }
    }
    return max_delta;
  }

  /// True when active-set scheduling is engaged (mode != kOff and the CSR
  /// neighbor index was materialized).
  bool active() const { return mode_ != ActiveSetMode::kOff; }
  /// Pairs evaluated by the most recent Step.
  size_t last_evaluated() const { return last_evaluated_; }
  /// Pairs evaluated across all Steps so far.
  size_t total_evaluated() const { return total_evaluated_; }
  /// Iterations that ran as full sweeps (the first, plus density
  /// fallbacks).
  uint32_t full_sweeps() const { return full_sweeps_; }
  /// Accumulated frontier-construction time.
  double frontier_build_seconds() const { return frontier_build_seconds_; }

 private:
  /// Cache-line-padded per-worker sweep accumulators.
  struct alignas(64) WorkerSweepStats {
    double max_delta = 0.0;
    /// Tolerance mode, while marking is deferred: pairs with
    /// delta <= frontier_tolerance (their outgoing influence is near the
    /// skip threshold, so frontiers are about to shrink).
    size_t freeze_signal = 0;
    /// Exact mode, while marking is deferred: Σ RefSpanTotal over changed
    /// pairs — an upper bound on the next frontier's size. Zero-delta
    /// counts are useless here: a pair whose value sits still can still
    /// have changed inputs, so only a small *dependent cover* predicts a
    /// shrinking frontier.
    uint64_t dep_bound = 0;
  };

  void Fold(int worker, const WorkerSweepStats& local) {
    if (local.max_delta > worker_stats_[worker].max_delta) {
      worker_stats_[worker].max_delta = local.max_delta;
    }
    worker_stats_[worker].freeze_signal += local.freeze_signal;
    worker_stats_[worker].dep_bound += local.dep_bound;
  }

  /// Evaluates pair i, records it, and (once marking is active) marks its
  /// dependents when changed.
  void EvaluatePair(int worker, size_t i, MatchingScratch* scratch,
                    WorkerSweepStats* local) {
    const double value = evaluator_.Evaluate(i, scratch);
    store_.set_curr(i, value);
    const double delta = std::abs(value - store_.prev(i));
    if (delta > local->max_delta) local->max_delta = delta;
    if (mode_ == ActiveSetMode::kExact) {
      if (delta != 0.0) {
        if (marking_) {
          MarkDependents<false>(worker, i, delta);
        } else {
          local->dep_bound += store_.RefSpanTotal(i);
        }
      }
    } else if (mode_ == ActiveSetMode::kTolerance) {
      if (delta <= config_.frontier_tolerance) ++local->freeze_signal;
      if (delta != 0.0 && marking_) MarkDependents<true>(worker, i, delta);
    }
  }

  /// Stamps the pairs whose next evaluation reads pair i: the refs of i's
  /// in-span (their out-direction consumes i) and of i's out-span (their
  /// in-direction does). Pruned-table refs never re-evaluate and are
  /// skipped; a zero-weight direction contributes nothing to any dependent
  /// and is skipped with it.
  template <bool kTolerance>
  void MarkDependents(int worker, size_t i, double delta) {
    const uint32_t epoch = tracker_.epoch();
    // Exact mode stamps the shared atomic array (all writers store the
    // same epoch, so relaxed order suffices); tolerance mode accumulates
    // per-worker influence next to a private stamp.
    uint32_t* stamp = kTolerance ? tracker_.stamps(worker) : nullptr;
    float* inf = kTolerance ? tracker_.influence(worker) : nullptr;
    std::atomic<uint32_t>* shared =
        kTolerance ? nullptr : tracker_.shared_stamps();
    auto mark_span = [&](auto refs, double base, const float* factor) {
      for (const auto& e : refs) {
        const uint32_t r = e.ref;
        if (IsPrunedRef(r)) continue;
        if constexpr (kTolerance) {
          const float x = static_cast<float>(base * factor[r]);
          if (stamp[r] != epoch) {
            stamp[r] = epoch;
            inf[r] = x;
          } else {
            inf[r] += x;
          }
        } else {
          shared[r].store(epoch, std::memory_order_relaxed);
        }
      }
    };
    const double base_out = config_.w_out * delta;
    const double base_in = config_.w_in * delta;
    if (scheme_ == ReverseDepScheme::kSymmetricOut) {
      // Symmetric out-adjacency: the out-span is its own dependent list,
      // and the in-direction (empty sets everywhere) never changes.
      if (config_.w_out > 0.0) {
        if (store_.packed_refs()) {
          mark_span(store_.OutRefsPacked(i), base_out, influence_out_.data());
        } else {
          mark_span(store_.OutRefs(i), base_out, influence_out_.data());
        }
      }
      return;
    }
    if (store_.packed_refs()) {
      if (config_.w_out > 0.0) {
        mark_span(store_.InRefsPacked(i), base_out, influence_out_.data());
      }
      if (config_.w_in > 0.0) {
        mark_span(store_.OutRefsPacked(i), base_in, influence_in_.data());
      }
    } else {
      if (config_.w_out > 0.0) {
        mark_span(store_.InRefs(i), base_out, influence_out_.data());
      }
      if (config_.w_in > 0.0) {
        mark_span(store_.OutRefs(i), base_in, influence_in_.data());
      }
    }
  }

  ThreadPool& pool_;
  PairStore& store_;
  const PairEvaluator& evaluator_;
  const FSimConfig& config_;
  ActiveSetMode mode_;
  ReverseDepScheme scheme_ = ReverseDepScheme::kTranspose;
  /// Dependent marking engaged (see active_set_activation_fraction).
  bool marking_ = false;
  /// The previous sweep marked, so its stamps form a complete frontier.
  bool can_build_frontier_ = false;
  /// The previous sweep evaluated every pair (tolerance-mode carries from
  /// before it are absorbed).
  bool last_was_full_sweep_ = false;
  FrontierTracker tracker_;
  std::vector<uint32_t> frontier_;
  std::vector<float> influence_out_;  // kTolerance: per-pair c/Ωχ factors
  std::vector<float> influence_in_;
  std::vector<MatchingScratch> scratch_;
  std::vector<WorkerSweepStats> worker_stats_;
  uint32_t iter_ = 0;
  uint32_t full_sweeps_ = 0;
  size_t last_evaluated_ = 0;
  size_t total_evaluated_ = 0;
  double frontier_build_seconds_ = 0.0;
};

}  // namespace fsim

#endif  // FSIM_CORE_PAIR_EVALUATOR_H_
