// The mapping and normalizing operators Mχ / Ωχ of Table 3, evaluated over
// two neighbor sets. DirectionScore computes one direction's normalized
// contribution FSimχ(S1, S2) = Σ_{(x,y)∈Mχ} FSim(x,y) / Ωχ(S1,S2)
// (Equation 2), including the empty-set conventions that make simulation
// definiteness (P2 of Definition 4) hold:
//
//   s / dp:  S1 = ∅              -> 1   (Definition 1's ∀ is vacuous)
//   b:       S1 = ∅ and S2 = ∅   -> 1   (otherwise the unmatched side
//                                        contributes zeros naturally)
//   bj:      both empty -> 1; exactly one empty -> 0 (no bijection exists)
//   product: either empty -> 0 (SimRank's convention)
//
// The score lookup is a template parameter returning the previous-iteration
// score of (x, y), or a negative value when x may not be mapped to y (label
// constraint of Remark 2).
#ifndef FSIM_CORE_OPERATORS_H_
#define FSIM_CORE_OPERATORS_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/fsim_config.h"
#include "graph/graph.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace fsim {

/// One label-compatible candidate pair (x, y) ∈ S1 x S2 in the pair-graph
/// CSR neighbor index: `row`/`col` are the positions of x in S1 and y in S2,
/// and `ref` locates the previous-iteration score — a PairStore index, or
/// (when the kNeighborRefPrunedTag bit is set) an index into the pruned
/// upper-bound side table whose lookup value is α * bound. Entries are
/// sorted by (row, col), so per-row spans are contiguous.
struct NeighborRef {
  uint32_t row;
  uint32_t col;
  uint32_t ref;
};

/// Tag bit marking a NeighborRef::ref that points into the pruned-pair
/// upper-bound table instead of the maintained score array.
inline constexpr uint32_t kNeighborRefPrunedTag = 0x80000000u;

/// Ωχ(S1, S2) of Table 3.
inline double OmegaValue(OmegaKind kind, size_t n1, size_t n2) {
  switch (kind) {
    case OmegaKind::kSizeS1:
      return static_cast<double>(n1);
    case OmegaKind::kSumSizes:
      return static_cast<double>(n1 + n2);
    case OmegaKind::kGeoMean:
      return std::sqrt(static_cast<double>(n1) * static_cast<double>(n2));
    case OmegaKind::kMaxSize:
      return static_cast<double>(std::max(n1, n2));
    case OmegaKind::kProduct:
      return static_cast<double>(n1) * static_cast<double>(n2);
  }
  return 0.0;
}

namespace internal {

/// Closed-form max-weight matching value for edge sets of size <= 2; the
/// caller dispatches to the full algorithm above this size. Greedy and
/// Hungarian coincide exactly here (a singleton keeps its edge; two edges
/// keep both when endpoint-disjoint, else the heavier one), so this is a
/// value-identical shortcut for either realization — and the dominant case
/// on sparse labeled graphs, where most candidate neighborhoods induce at
/// most a couple of positive-score pairs.
inline bool TinyMatchingSum(const std::vector<WeightedEdge>& edges,
                            double* sum) {
  switch (edges.size()) {
    case 0:
      *sum = 0.0;
      return true;
    case 1:
      *sum = edges[0].weight;
      return true;
    case 2: {
      const WeightedEdge& a = edges[0];
      const WeightedEdge& b = edges[1];
      *sum = (a.left != b.left && a.right != b.right)
                 ? a.weight + b.weight
                 : std::max(a.weight, b.weight);
      return true;
    }
    default:
      return false;
  }
}

/// Σ over the max-weight injective mapping between s1 and s2 (the M_dp/M_bj
/// realization). Greedy is the paper's ½-approximation; Hungarian is exact.
template <typename Lookup>
double InjectiveMappingSum(std::span<const NodeId> s1,
                           std::span<const NodeId> s2, Lookup&& lookup,
                           MatchingAlgo algo, MatchingScratch* scratch) {
  if (s1.size() == 1 || s2.size() == 1) {
    // An injective mapping out of (or into) a singleton keeps exactly the
    // best edge; greedy and Hungarian both reduce to this maximum.
    double best = 0.0;
    for (NodeId x : s1) {
      for (NodeId y : s2) {
        const double score = lookup(x, y);
        if (score > best) best = score;
      }
    }
    return best;
  }
  scratch->edges.clear();
  for (size_t i = 0; i < s1.size(); ++i) {
    for (size_t j = 0; j < s2.size(); ++j) {
      double score = lookup(s1[i], s2[j]);
      // Zero-weight edges cannot increase the matching sum; dropping them
      // keeps the sort cheap.
      if (score > 0.0) {
        scratch->edges.push_back({static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(j), score});
      }
    }
  }
  double tiny = 0.0;
  if (TinyMatchingSum(scratch->edges, &tiny)) return tiny;
  if (algo == MatchingAlgo::kHungarian) {
    // Reuse the scratch's flat weight matrix — the per-call
    // vector<vector<double>> allocation dominated Hungarian runs.
    scratch->weights.assign(s1.size() * s2.size(), 0.0);
    for (const WeightedEdge& e : scratch->edges) {
      scratch->weights[e.left * s2.size() + e.right] = e.weight;
    }
    return HungarianMaxWeightMatching(scratch->weights.data(), s1.size(),
                                      s2.size());
  }
  return GreedyMaxWeightMatching(scratch, s1.size(), s2.size());
}

/// Σ of per-row maxima: every x in s1 maps to its best compatible y.
template <typename Lookup>
double MaxPerRowSum(std::span<const NodeId> s1, std::span<const NodeId> s2,
                    Lookup&& lookup) {
  double sum = 0.0;
  for (NodeId x : s1) {
    double best = 0.0;
    for (NodeId y : s2) {
      double score = lookup(x, y);
      if (score > best) best = score;
    }
    sum += best;
  }
  return sum;
}

}  // namespace internal

/// One direction's contribution in [0, 1]: Σ_{Mχ} / Ωχ with the empty-set
/// conventions listed above.
template <typename Lookup>
double DirectionScore(const OperatorConfig& op, MatchingAlgo algo,
                      std::span<const NodeId> s1, std::span<const NodeId> s2,
                      Lookup&& lookup, MatchingScratch* scratch) {
  const size_t n1 = s1.size();
  const size_t n2 = s2.size();
  double sum = 0.0;
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      if (n1 == 0) return 1.0;
      sum = internal::MaxPerRowSum(s1, s2, lookup);
      break;
    case MappingKind::kInjectiveRow:
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSum(s1, s2, lookup, algo, scratch);
      break;
    case MappingKind::kMaxBothSides: {
      if (n1 == 0 && n2 == 0) return 1.0;
      sum = internal::MaxPerRowSum(s1, s2, lookup);
      // The converse side: every y in s2 maps to its best x in s1.
      for (NodeId y : s2) {
        double best = 0.0;
        for (NodeId x : s1) {
          double score = lookup(x, y);
          if (score > best) best = score;
        }
        sum += best;
      }
      break;
    }
    case MappingKind::kInjectiveSym:
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSum(s1, s2, lookup, algo, scratch);
      break;
    case MappingKind::kProduct: {
      if (n1 == 0 || n2 == 0) return 0.0;
      for (NodeId x : s1) {
        for (NodeId y : s2) {
          double score = lookup(x, y);
          if (score > 0.0) sum += score;
        }
      }
      break;
    }
  }
  const double omega = OmegaValue(op.omega, n1, n2);
  FSIM_DCHECK(omega > 0.0);
  return sum / omega;
}

namespace internal {

/// MaxPerRowSum over CSR entries: Σ of per-row maxima. Rows without entries
/// contribute 0, exactly like rows whose lookups are all non-positive.
template <typename ScoreFn>
double MaxPerRowSumIndexed(std::span<const NeighborRef> refs,
                           ScoreFn&& score_of) {
  double sum = 0.0;
  size_t k = 0;
  const size_t m = refs.size();
  while (k < m) {
    const uint32_t row = refs[k].row;
    double best = 0.0;
    for (; k < m && refs[k].row == row; ++k) {
      const double score = score_of(refs[k].ref);
      if (score > best) best = score;
    }
    sum += best;
  }
  return sum;
}

/// InjectiveMappingSum over CSR entries.
template <typename ScoreFn>
double InjectiveMappingSumIndexed(size_t n1, size_t n2,
                                  std::span<const NeighborRef> refs,
                                  ScoreFn&& score_of, MatchingAlgo algo,
                                  MatchingScratch* scratch) {
  if (refs.empty()) return 0.0;
  if (n1 == 1 || n2 == 1) {
    // Singleton side: the matching keeps exactly the best edge (identical
    // to what greedy and Hungarian would select).
    double best = 0.0;
    for (const NeighborRef& e : refs) {
      const double score = score_of(e.ref);
      if (score > best) best = score;
    }
    return best;
  }
  scratch->edges.clear();
  for (const NeighborRef& e : refs) {
    const double score = score_of(e.ref);
    if (score > 0.0) scratch->edges.push_back({e.row, e.col, score});
  }
  double tiny = 0.0;
  if (TinyMatchingSum(scratch->edges, &tiny)) return tiny;
  if (algo == MatchingAlgo::kHungarian) {
    scratch->weights.assign(n1 * n2, 0.0);
    for (const WeightedEdge& e : scratch->edges) {
      scratch->weights[e.left * n2 + e.right] = e.weight;
    }
    return HungarianMaxWeightMatching(scratch->weights.data(), n1, n2);
  }
  return GreedyMaxWeightMatching(scratch, n1, n2);
}

}  // namespace internal

/// DirectionScore over the pair-graph CSR neighbor index: identical results
/// to the lookup-based overload (the entries enumerate exactly the
/// label-compatible pairs, in the same (x, y) order the nested loops visit),
/// but previous-iteration scores are read by direct array indexing through
/// `score_of(ref)` — zero hash probes and zero label checks. n1/n2 are the
/// full neighbor-set sizes |S1|/|S2| (the empty-set conventions and Ωχ
/// depend on them, not on the compatible-entry count).
template <typename ScoreFn>
double DirectionScoreIndexed(const OperatorConfig& op, MatchingAlgo algo,
                             size_t n1, size_t n2,
                             std::span<const NeighborRef> refs,
                             ScoreFn&& score_of, MatchingScratch* scratch) {
  double sum = 0.0;
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      if (n1 == 0) return 1.0;
      sum = internal::MaxPerRowSumIndexed(refs, score_of);
      break;
    case MappingKind::kInjectiveRow:
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSumIndexed(n1, n2, refs, score_of, algo,
                                                 scratch);
      break;
    case MappingKind::kMaxBothSides: {
      if (n1 == 0 && n2 == 0) return 1.0;
      sum = internal::MaxPerRowSumIndexed(refs, score_of);
      // The converse side: every y in s2 maps to its best x in s1. Column
      // maxima accumulate into scratch, then reduce in ascending-y order
      // (the order the lookup-based loop adds them in).
      auto& col_best = scratch->col_best;
      col_best.assign(n2, 0.0);
      for (const NeighborRef& e : refs) {
        const double score = score_of(e.ref);
        if (score > col_best[e.col]) col_best[e.col] = score;
      }
      for (double best : col_best) sum += best;
      break;
    }
    case MappingKind::kInjectiveSym:
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSumIndexed(n1, n2, refs, score_of, algo,
                                                 scratch);
      break;
    case MappingKind::kProduct: {
      if (n1 == 0 || n2 == 0) return 0.0;
      for (const NeighborRef& e : refs) {
        const double score = score_of(e.ref);
        if (score > 0.0) sum += score;
      }
      break;
    }
  }
  const double omega = OmegaValue(op.omega, n1, n2);
  FSIM_DCHECK(omega > 0.0);
  return sum / omega;
}

/// Upper bound of one direction's contribution (Eq. 6): DirectionScore with
/// every mappable pair's score over-approximated by 1, i.e. |Mχ| / Ωχ under
/// the label-compatibility relation. |Mχ| itself is over-approximated for
/// the injective operators (min of the side counts), which keeps the bound
/// sound — pruning with a looser bound only prunes less.
template <typename CompatFn>
double DirectionUpperBound(const OperatorConfig& op,
                           std::span<const NodeId> s1,
                           std::span<const NodeId> s2, CompatFn&& compat) {
  const size_t n1 = s1.size();
  const size_t n2 = s2.size();
  auto rows_with_any = [&]() {
    size_t count = 0;
    for (NodeId x : s1) {
      for (NodeId y : s2) {
        if (compat(x, y)) {
          ++count;
          break;
        }
      }
    }
    return count;
  };
  auto cols_with_any = [&]() {
    size_t count = 0;
    for (NodeId y : s2) {
      for (NodeId x : s1) {
        if (compat(x, y)) {
          ++count;
          break;
        }
      }
    }
    return count;
  };

  double mapped = 0.0;
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      if (n1 == 0) return 1.0;
      mapped = static_cast<double>(rows_with_any());
      break;
    case MappingKind::kInjectiveRow:
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
      mapped = static_cast<double>(
          std::min({rows_with_any(), cols_with_any(), std::min(n1, n2)}));
      break;
    case MappingKind::kMaxBothSides:
      if (n1 == 0 && n2 == 0) return 1.0;
      mapped = static_cast<double>(rows_with_any() + cols_with_any());
      break;
    case MappingKind::kInjectiveSym:
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
      mapped = static_cast<double>(
          std::min({rows_with_any(), cols_with_any(), std::min(n1, n2)}));
      break;
    case MappingKind::kProduct: {
      if (n1 == 0 || n2 == 0) return 0.0;
      size_t count = 0;
      for (NodeId x : s1) {
        for (NodeId y : s2) {
          if (compat(x, y)) ++count;
        }
      }
      mapped = static_cast<double>(count);
      break;
    }
  }
  return mapped / OmegaValue(op.omega, n1, n2);
}

}  // namespace fsim

#endif  // FSIM_CORE_OPERATORS_H_
