// The mapping and normalizing operators Mχ / Ωχ of Table 3, evaluated over
// two neighbor sets. DirectionScore computes one direction's normalized
// contribution FSimχ(S1, S2) = Σ_{(x,y)∈Mχ} FSim(x,y) / Ωχ(S1,S2)
// (Equation 2), including the empty-set conventions that make simulation
// definiteness (P2 of Definition 4) hold:
//
//   s / dp:  S1 = ∅              -> 1   (Definition 1's ∀ is vacuous)
//   b:       S1 = ∅ and S2 = ∅   -> 1   (otherwise the unmatched side
//                                        contributes zeros naturally)
//   bj:      both empty -> 1; exactly one empty -> 0 (no bijection exists)
//   product: either empty -> 0 (SimRank's convention)
//
// The score lookup is a template parameter returning the previous-iteration
// score of (x, y), or a negative value when x may not be mapped to y (label
// constraint of Remark 2).
#ifndef FSIM_CORE_OPERATORS_H_
#define FSIM_CORE_OPERATORS_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/fsim_config.h"
#include "graph/graph.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace fsim {

/// One label-compatible candidate pair (x, y) ∈ S1 x S2 in the pair-graph
/// CSR neighbor index: `row`/`col` are the positions of x in S1 and y in S2,
/// and `ref` locates the previous-iteration score — a PairStore index, or
/// (when the kNeighborRefPrunedTag bit is set) an index into the pruned
/// upper-bound side table whose lookup value is α * bound. Entries are
/// sorted by (row, col), so per-row spans are contiguous.
struct NeighborRef {
  uint32_t row;
  uint32_t col;
  uint32_t ref;
};

/// Tag bit marking a NeighborRef::ref that points into the pruned-pair
/// upper-bound table instead of the maintained score array.
inline constexpr uint32_t kNeighborRefPrunedTag = 0x80000000u;

/// True when `ref` points into the pruned upper-bound side table. Pruned
/// pairs are never re-evaluated and their bounds never change, so the
/// active-set frontier marking skips tagged refs outright.
inline constexpr bool IsPrunedRef(uint32_t ref) {
  return (ref & kNeighborRefPrunedTag) != 0;
}

/// 8-byte packed variant of NeighborRef for degree-bounded graphs: when
/// every relevant neighbor-list position fits in 16 bits, row/col shrink to
/// uint16_t, halving the index memory and doubling the entries per cache
/// line. PairStore::Build selects the layout automatically (see
/// FSimConfig::use_packed_neighbor_refs); the indexed operators below are
/// templated over the entry type, so both layouts share one code path.
struct PackedNeighborRef {
  uint16_t row;
  uint16_t col;
  uint32_t ref;
};

/// One same-label-class run inside a label-class-grouped neighbor list:
/// [begin, end) index the grouped node/position arrays of the owning
/// GroupedNeighborhood. Runs are ordered by ascending class id; within a
/// run, nodes keep ascending node-id (hence ascending original-position)
/// order.
struct ClassGroup {
  LabelId label;
  uint32_t begin;
  uint32_t end;
};

/// A label-class-grouped view of one neighbor set S = N±(u): nodes[k] is
/// the k-th neighbor in (class, id) order and pos[k] its position in the
/// original id-sorted neighbor list — the row/col index the ungrouped
/// operators use, which keeps matching tie-breaks and Ωχ identical between
/// the grouped and the nested-loop enumeration. `size` is |S|.
/// class_offsets is the node's dense per-class index: the class-c run is
/// [class_offsets[c], class_offsets[c+1]) (empty for absent classes), so a
/// compatible class resolves to its candidate run with one lookup.
struct GroupedNeighborhood {
  std::span<const ClassGroup> groups;
  const NodeId* nodes = nullptr;
  const uint32_t* pos = nullptr;
  const uint32_t* class_offsets = nullptr;
  size_t size = 0;
};

/// The class-compatibility interface the grouped operators consume
/// (provided by core/dense_index.h LabelClassTable): the θ-thresholded
/// per-class bitsets plus, per class, the precomputed ascending list of
/// compatible classes — so the iterate loop intersects class lists without
/// re-testing θ anywhere.
struct ClassCompatView {
  const uint64_t* bits = nullptr;      // per-class bitset rows
  size_t words = 0;                    // 64-bit words per row
  const uint32_t* list_offsets = nullptr;  // per-class compat-list CSR
  const LabelId* list = nullptr;

  bool Compatible(LabelId a, LabelId b) const {
    return (bits[a * words + (b >> 6)] >> (b & 63)) & 1u;
  }
  std::span<const LabelId> CompatClasses(LabelId a) const {
    return {list + list_offsets[a], list + list_offsets[a + 1]};
  }
};

/// Ωχ(S1, S2) of Table 3.
inline double OmegaValue(OmegaKind kind, size_t n1, size_t n2) {
  switch (kind) {
    case OmegaKind::kSizeS1:
      return static_cast<double>(n1);
    case OmegaKind::kSumSizes:
      return static_cast<double>(n1 + n2);
    case OmegaKind::kGeoMean:
      return std::sqrt(static_cast<double>(n1) * static_cast<double>(n2));
    case OmegaKind::kMaxSize:
      return static_cast<double>(std::max(n1, n2));
    case OmegaKind::kProduct:
      return static_cast<double>(n1) * static_cast<double>(n2);
  }
  return 0.0;
}

/// The sharpened per-entry influence bound c / Ωχ(S1, S2) of one direction:
/// a change of magnitude delta in one input entry moves the direction's
/// normalized sum by at most c · delta / Ωχ (the mapping operators are
/// 1-Lipschitz per entry; c = 2 for the both-sides mapping, whose entries
/// feed a row and a column maximum). Clamped at 1 so it is never looser
/// than the coarse "Ωχ >= 1" bound; 0 when the direction has an empty side
/// (its span has no entries, so the factor is never read). Shared by the
/// incremental engine's worklist pushes and the batch engines'
/// tolerance-mode frontier marking.
inline double PairInfluenceFactor(const OperatorConfig& op, size_t n1,
                                  size_t n2) {
  if (n1 == 0 || n2 == 0) return 0.0;
  const double c = op.mapping == MappingKind::kMaxBothSides ? 2.0 : 1.0;
  return std::min(1.0, c / OmegaValue(op.omega, n1, n2));
}

namespace internal {

/// Closed-form max-weight matching value for edge sets of size <= 2; the
/// caller dispatches to the full algorithm above this size. Greedy and
/// Hungarian coincide exactly here (a singleton keeps its edge; two edges
/// keep both when endpoint-disjoint, else the heavier one), so this is a
/// value-identical shortcut for either realization — and the dominant case
/// on sparse labeled graphs, where most candidate neighborhoods induce at
/// most a couple of positive-score pairs.
inline bool TinyMatchingSum(const std::vector<WeightedEdge>& edges,
                            double* sum) {
  switch (edges.size()) {
    case 0:
      *sum = 0.0;
      return true;
    case 1:
      *sum = edges[0].weight;
      return true;
    case 2: {
      const WeightedEdge& a = edges[0];
      const WeightedEdge& b = edges[1];
      *sum = (a.left != b.left && a.right != b.right)
                 ? a.weight + b.weight
                 : std::max(a.weight, b.weight);
      return true;
    }
    default:
      return false;
  }
}

/// Σ over the max-weight injective mapping between s1 and s2 (the M_dp/M_bj
/// realization). Greedy is the paper's ½-approximation; Hungarian is exact.
template <typename Lookup>
double InjectiveMappingSum(std::span<const NodeId> s1,
                           std::span<const NodeId> s2, Lookup&& lookup,
                           MatchingAlgo algo, MatchingScratch* scratch) {
  if (s1.size() == 1 || s2.size() == 1) {
    // An injective mapping out of (or into) a singleton keeps exactly the
    // best edge; greedy and Hungarian both reduce to this maximum.
    double best = 0.0;
    for (NodeId x : s1) {
      for (NodeId y : s2) {
        const double score = lookup(x, y);
        if (score > best) best = score;
      }
    }
    return best;
  }
  scratch->edges.clear();
  for (size_t i = 0; i < s1.size(); ++i) {
    for (size_t j = 0; j < s2.size(); ++j) {
      double score = lookup(s1[i], s2[j]);
      // Zero-weight edges cannot increase the matching sum; dropping them
      // keeps the sort cheap.
      if (score > 0.0) {
        scratch->edges.push_back({static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(j), score});
      }
    }
  }
  double tiny = 0.0;
  if (TinyMatchingSum(scratch->edges, &tiny)) return tiny;
  if (algo == MatchingAlgo::kHungarian) {
    // Reuse the scratch's flat weight matrix — the per-call
    // vector<vector<double>> allocation dominated Hungarian runs.
    scratch->weights.assign(s1.size() * s2.size(), 0.0);
    for (const WeightedEdge& e : scratch->edges) {
      scratch->weights[e.left * s2.size() + e.right] = e.weight;
    }
    return HungarianMaxWeightMatching(scratch->weights.data(), s1.size(),
                                      s2.size());
  }
  return GreedyMaxWeightMatching(scratch, s1.size(), s2.size());
}

/// Σ of per-row maxima: every x in s1 maps to its best compatible y.
template <typename Lookup>
double MaxPerRowSum(std::span<const NodeId> s1, std::span<const NodeId> s2,
                    Lookup&& lookup) {
  double sum = 0.0;
  for (NodeId x : s1) {
    double best = 0.0;
    for (NodeId y : s2) {
      double score = lookup(x, y);
      if (score > best) best = score;
    }
    sum += best;
  }
  return sum;
}

}  // namespace internal

/// One direction's contribution in [0, 1]: Σ_{Mχ} / Ωχ with the empty-set
/// conventions listed above.
template <typename Lookup>
double DirectionScore(const OperatorConfig& op, MatchingAlgo algo,
                      std::span<const NodeId> s1, std::span<const NodeId> s2,
                      Lookup&& lookup, MatchingScratch* scratch) {
  const size_t n1 = s1.size();
  const size_t n2 = s2.size();
  double sum = 0.0;
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      if (n1 == 0) return 1.0;
      sum = internal::MaxPerRowSum(s1, s2, lookup);
      break;
    case MappingKind::kInjectiveRow:
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSum(s1, s2, lookup, algo, scratch);
      break;
    case MappingKind::kMaxBothSides: {
      if (n1 == 0 && n2 == 0) return 1.0;
      sum = internal::MaxPerRowSum(s1, s2, lookup);
      // The converse side: every y in s2 maps to its best x in s1.
      for (NodeId y : s2) {
        double best = 0.0;
        for (NodeId x : s1) {
          double score = lookup(x, y);
          if (score > best) best = score;
        }
        sum += best;
      }
      break;
    }
    case MappingKind::kInjectiveSym:
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSum(s1, s2, lookup, algo, scratch);
      break;
    case MappingKind::kProduct: {
      if (n1 == 0 || n2 == 0) return 0.0;
      for (NodeId x : s1) {
        for (NodeId y : s2) {
          double score = lookup(x, y);
          if (score > 0.0) sum += score;
        }
      }
      break;
    }
  }
  const double omega = OmegaValue(op.omega, n1, n2);
  FSIM_DCHECK(omega > 0.0);
  return sum / omega;
}

namespace internal {

/// MaxPerRowSum over CSR entries: Σ of per-row maxima. Rows without entries
/// contribute 0, exactly like rows whose lookups are all non-positive.
/// `Ref` is NeighborRef or PackedNeighborRef.
template <typename Ref, typename ScoreFn>
double MaxPerRowSumIndexed(std::span<const Ref> refs, ScoreFn&& score_of) {
  double sum = 0.0;
  size_t k = 0;
  const size_t m = refs.size();
  while (k < m) {
    const uint32_t row = refs[k].row;
    double best = 0.0;
    for (; k < m && refs[k].row == row; ++k) {
      const double score = score_of(refs[k].ref);
      if (score > best) best = score;
    }
    sum += best;
  }
  return sum;
}

/// InjectiveMappingSum over CSR entries.
template <typename Ref, typename ScoreFn>
double InjectiveMappingSumIndexed(size_t n1, size_t n2,
                                  std::span<const Ref> refs,
                                  ScoreFn&& score_of, MatchingAlgo algo,
                                  MatchingScratch* scratch) {
  if (refs.empty()) return 0.0;
  if (n1 == 1 || n2 == 1) {
    // Singleton side: the matching keeps exactly the best edge (identical
    // to what greedy and Hungarian would select).
    double best = 0.0;
    for (const Ref& e : refs) {
      const double score = score_of(e.ref);
      if (score > best) best = score;
    }
    return best;
  }
  scratch->edges.clear();
  for (const Ref& e : refs) {
    const double score = score_of(e.ref);
    if (score > 0.0) scratch->edges.push_back({e.row, e.col, score});
  }
  double tiny = 0.0;
  if (TinyMatchingSum(scratch->edges, &tiny)) return tiny;
  if (algo == MatchingAlgo::kHungarian) {
    scratch->weights.assign(n1 * n2, 0.0);
    for (const WeightedEdge& e : scratch->edges) {
      scratch->weights[e.left * n2 + e.right] = e.weight;
    }
    return HungarianMaxWeightMatching(scratch->weights.data(), n1, n2);
  }
  return GreedyMaxWeightMatching(scratch, n1, n2);
}

}  // namespace internal

/// DirectionScore over the pair-graph CSR neighbor index: identical results
/// to the lookup-based overload (the entries enumerate exactly the
/// label-compatible pairs, in the same (x, y) order the nested loops visit),
/// but previous-iteration scores are read by direct array indexing through
/// `score_of(ref)` — zero hash probes and zero label checks. n1/n2 are the
/// full neighbor-set sizes |S1|/|S2| (the empty-set conventions and Ωχ
/// depend on them, not on the compatible-entry count).
template <typename Ref, typename ScoreFn>
double DirectionScoreIndexed(const OperatorConfig& op, MatchingAlgo algo,
                             size_t n1, size_t n2,
                             std::span<const Ref> refs,
                             ScoreFn&& score_of, MatchingScratch* scratch) {
  double sum = 0.0;
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      if (n1 == 0) return 1.0;
      sum = internal::MaxPerRowSumIndexed(refs, score_of);
      break;
    case MappingKind::kInjectiveRow:
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSumIndexed(n1, n2, refs, score_of, algo,
                                                 scratch);
      break;
    case MappingKind::kMaxBothSides: {
      if (n1 == 0 && n2 == 0) return 1.0;
      sum = internal::MaxPerRowSumIndexed(refs, score_of);
      // The converse side: every y in s2 maps to its best x in s1. Column
      // maxima accumulate into scratch, then reduce in ascending-y order
      // (the order the lookup-based loop adds them in).
      auto& col_best = scratch->col_best;
      col_best.assign(n2, 0.0);
      for (const Ref& e : refs) {
        const double score = score_of(e.ref);
        if (score > col_best[e.col]) col_best[e.col] = score;
      }
      for (double best : col_best) sum += best;
      break;
    }
    case MappingKind::kInjectiveSym:
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
      sum = internal::InjectiveMappingSumIndexed(n1, n2, refs, score_of, algo,
                                                 scratch);
      break;
    case MappingKind::kProduct: {
      if (n1 == 0 || n2 == 0) return 0.0;
      for (const Ref& e : refs) {
        const double score = score_of(e.ref);
        if (score > 0.0) sum += score;
      }
      break;
    }
  }
  const double omega = OmegaValue(op.omega, n1, n2);
  FSIM_DCHECK(omega > 0.0);
  return sum / omega;
}

namespace internal {

/// Invokes visit(run_begin, run_end) for every non-empty S2 candidate run
/// compatible with class `a`, ascending by class — by walking a's
/// precomputed compatible-class list against S2's dense class index, or by
/// scanning S2's present classes against the bitset, whichever loop is
/// shorter (both produce the same runs in the same order). No intermediate
/// buffers: the runs resolve to offset pairs inline.
template <typename VisitFn>
inline void ForEachCompatRun(LabelId a, const GroupedNeighborhood& s2,
                             const ClassCompatView& compat, VisitFn&& visit) {
  const std::span<const LabelId> classes = compat.CompatClasses(a);
  if (classes.size() <= s2.groups.size()) {
    for (LabelId c : classes) {
      const uint32_t begin = s2.class_offsets[c];
      const uint32_t end = s2.class_offsets[c + 1];
      if (begin != end) visit(begin, end);
    }
  } else {
    for (const ClassGroup& g : s2.groups) {
      if (compat.Compatible(a, g.label)) visit(g.begin, g.end);
    }
  }
}

/// Total candidate count of class a against S2 (0 = the whole row class
/// can be skipped).
inline uint32_t CompatCandidateCount(LabelId a, const GroupedNeighborhood& s2,
                                     const ClassCompatView& compat) {
  uint32_t total = 0;
  ForEachCompatRun(a, s2, compat,
                   [&](uint32_t begin, uint32_t end) { total += end - begin; });
  return total;
}

/// InjectiveMappingSum over grouped candidates. Edge endpoints are the
/// original neighbor-list positions, so the greedy tie-break total order
/// (weight, left, right) — and hence the selected matching — is identical
/// to the ungrouped enumeration's.
template <typename ScoreFn>
double InjectiveMappingSumGrouped(const GroupedNeighborhood& s1,
                                  const GroupedNeighborhood& s2,
                                  const ClassCompatView& compat,
                                  ScoreFn&& score, MatchingAlgo algo,
                                  MatchingScratch* scratch) {
  if (s1.size == 1 || s2.size == 1) {
    // Singleton side: the matching keeps exactly the best edge.
    double best = 0.0;
    for (const ClassGroup& ga : s1.groups) {
      for (uint32_t i = ga.begin; i < ga.end; ++i) {
        const NodeId x = s1.nodes[i];
        ForEachCompatRun(ga.label, s2, compat,
                         [&](uint32_t rb, uint32_t re) {
                           for (uint32_t j = rb; j < re; ++j) {
                             const double v = score(x, s2.nodes[j]);
                             if (v > best) best = v;
                           }
                         });
      }
    }
    return best;
  }
  scratch->edges.clear();
  for (const ClassGroup& ga : s1.groups) {
    for (uint32_t i = ga.begin; i < ga.end; ++i) {
      const NodeId x = s1.nodes[i];
      ForEachCompatRun(
          ga.label, s2, compat, [&](uint32_t rb, uint32_t re) {
            for (uint32_t j = rb; j < re; ++j) {
              const double v = score(x, s2.nodes[j]);
              if (v > 0.0) scratch->edges.push_back({s1.pos[i], s2.pos[j], v});
            }
          });
    }
  }
  double tiny = 0.0;
  if (TinyMatchingSum(scratch->edges, &tiny)) return tiny;
  if (algo == MatchingAlgo::kHungarian) {
    scratch->weights.assign(s1.size * s2.size, 0.0);
    for (const WeightedEdge& e : scratch->edges) {
      scratch->weights[e.left * s2.size + e.right] = e.weight;
    }
    return HungarianMaxWeightMatching(scratch->weights.data(), s1.size,
                                      s2.size);
  }
  return GreedyMaxWeightMatching(scratch, s1.size, s2.size);
}

}  // namespace internal

/// DirectionScore over label-class-grouped neighborhoods (the dense-engine
/// fast path, core/dense_index.h): candidate pairs are enumerated by
/// intersecting the class runs of S1 and S2 — one compatibility test per
/// *class pair* instead of per element, and incompatible classes are
/// skipped wholesale. `compat(a, b)` is the θ-thresholded label-class
/// compatibility (one bit test against the LabelClassTable); `score(x, y)`
/// reads the previous-iteration score of an enumerated (hence compatible)
/// candidate directly — no per-visit label work.
///
/// Candidates are visited class-grouped rather than in the nested loops'
/// (x, y) order, but the results are bit-identical to the ungrouped
/// enumeration for every operator except one corner: row/column maxima are
/// order-exact and reduced in ascending original-position order, the
/// matchings key their total orders on the *original* positions
/// (s1.pos / s2.pos), and the product operator walks rows ascending with a
/// raw ascending column walk whenever the row's class is compatible with
/// every class present in S2 (always true at θ = 0). Only a product row
/// with *partially* compatible classes sums its columns class-grouped —
/// a within-row reassociation of an order-eps tail that the dense
/// equivalence sweep pins to 1e-12 (tests/dense_engine_test.cc).
template <MappingKind M, typename ScoreFn>
double DirectionScoreGroupedT(OmegaKind omega_kind, MatchingAlgo algo,
                              const GroupedNeighborhood& s1,
                              const GroupedNeighborhood& s2,
                              const ClassCompatView& compat, ScoreFn&& score,
                              MatchingScratch* scratch) {
  const size_t n1 = s1.size;
  const size_t n2 = s2.size;
  double sum = 0.0;
  if constexpr (M == MappingKind::kMaxPerRow ||
                M == MappingKind::kMaxBothSides) {
    constexpr bool kBothSides = M == MappingKind::kMaxBothSides;
    if constexpr (kBothSides) {
      if (n1 == 0 && n2 == 0) return 1.0;
      scratch->col_best.assign(n2, 0.0);
    } else {
      if (n1 == 0) return 1.0;
    }
    // Group-major pass: per-row maxima land in row_best[original position]
    // (and column maxima in col_best for the bisimulation operator), exact
    // regardless of visit order; reduced ascending afterwards. Every
    // position is written exactly once (the runs partition the rows), so
    // the buffer needs sizing but no zero-fill.
    auto& row_best = scratch->row_best;
    if (row_best.size() < n1) row_best.resize(n1);
    for (const ClassGroup& ga : s1.groups) {
      for (uint32_t i = ga.begin; i < ga.end; ++i) {
        const NodeId x = s1.nodes[i];
        double best = 0.0;
        internal::ForEachCompatRun(
            ga.label, s2, compat, [&](uint32_t rb, uint32_t re) {
              for (uint32_t j = rb; j < re; ++j) {
                const double v = score(x, s2.nodes[j]);
                if (v > best) best = v;
                if constexpr (kBothSides) {
                  if (v > scratch->col_best[s2.pos[j]]) {
                    scratch->col_best[s2.pos[j]] = v;
                  }
                }
              }
            });
        row_best[s1.pos[i]] = best;
      }
    }
    for (size_t p = 0; p < n1; ++p) sum += row_best[p];
    if constexpr (kBothSides) {
      for (double best : scratch->col_best) sum += best;
    }
  } else if constexpr (M == MappingKind::kInjectiveRow ||
                       M == MappingKind::kInjectiveSym) {
    if constexpr (M == MappingKind::kInjectiveRow) {
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
    } else {
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
    }
    sum = internal::InjectiveMappingSumGrouped(s1, s2, compat, score, algo,
                                               scratch);
  } else {
    static_assert(M == MappingKind::kProduct);
    if (n1 == 0 || n2 == 0) return 0.0;
    // The product sum has no per-row reduction to anchor on, so restore
    // the nested loops' running-accumulator order: walk rows ascending
    // via position->(class, node) maps, and columns ascending whenever
    // the row's class is compatible with every class present in S2.
    auto& row_class = scratch->row_class;
    auto& row_node = scratch->row_node;
    auto& col_node = scratch->col_node;
    row_class.resize(n1);
    row_node.resize(n1);
    col_node.resize(n2);
    for (const ClassGroup& ga : s1.groups) {
      for (uint32_t i = ga.begin; i < ga.end; ++i) {
        row_class[s1.pos[i]] = ga.label;
        row_node[s1.pos[i]] = s1.nodes[i];
      }
    }
    for (const ClassGroup& gb : s2.groups) {
      for (uint32_t j = gb.begin; j < gb.end; ++j) {
        col_node[s2.pos[j]] = s2.nodes[j];
      }
    }
    LabelId covered_class = kInvalidNode;  // memoized count input
    uint32_t covered = 0;
    for (size_t p = 0; p < n1; ++p) {
      if (row_class[p] != covered_class) {
        covered_class = row_class[p];
        covered = internal::CompatCandidateCount(covered_class, s2, compat);
      }
      if (covered == 0) continue;
      const NodeId x = row_node[p];
      if (covered == n2) {
        for (size_t q = 0; q < n2; ++q) {
          const double v = score(x, col_node[q]);
          if (v > 0.0) sum += v;
        }
      } else {
        internal::ForEachCompatRun(
            static_cast<LabelId>(row_class[p]), s2, compat,
            [&](uint32_t rb, uint32_t re) {
              for (uint32_t j = rb; j < re; ++j) {
                const double v = score(x, s2.nodes[j]);
                if (v > 0.0) sum += v;
              }
            });
      }
    }
  }
  const double omega = OmegaValue(omega_kind, n1, n2);
  FSIM_DCHECK(omega > 0.0);
  return sum / omega;
}

/// Evaluates one direction of a fixed left neighborhood S1 against a tile
/// of right neighborhoods s2s[t], writing the DirectionScore values into
/// out[t] — the dense engine's per-(u, v-tile) fast path. For the
/// max-per-row family the S1-side state (position maps, compatible-class
/// lists, prev-row bases) is hoisted out of the tile loop and rows are
/// walked in ascending original order with one running accumulator per
/// tile entry, so every out[t] is bit-identical to the per-pair
/// DirectionScoreGroupedT value. The matching-based and product operators
/// delegate to the per-pair evaluation (their per-pair work dominates).
///
/// This scalar tile walk is also the reference semantics for the
/// vectorized panel path (core/simd/): when a SIMD level is enabled, the
/// dense engine replaces the max-family branch below with precomputed SoA
/// candidate panels and masked-gather kernels that are bit-identical to
/// it — the equivalence is pinned by tests/simd_kernel_test.cc, and
/// FSIM_SIMD=off forces exactly this code.
template <MappingKind M, typename ScoreFn>
void DirectionScoreGroupedTile(OmegaKind omega_kind, MatchingAlgo algo,
                               const GroupedNeighborhood& s1,
                               std::span<const GroupedNeighborhood> s2s,
                               const ClassCompatView& compat, ScoreFn&& score,
                               MatchingScratch* scratch, double* out) {
  const size_t tile = s2s.size();
  const size_t n1 = s1.size;
  constexpr bool kMaxFamily = M == MappingKind::kMaxPerRow ||
                              M == MappingKind::kMaxBothSides;
  constexpr bool kInjective = M == MappingKind::kInjectiveRow ||
                              M == MappingKind::kInjectiveSym;
  if ((!kMaxFamily && !kInjective) || n1 == 0) {
    // Per-pair evaluation: the product operator, and the n1 = 0 empty-set
    // conventions (which depend on each s2s[t].size).
    for (size_t t = 0; t < tile; ++t) {
      out[t] = DirectionScoreGroupedT<M>(omega_kind, algo, s1, s2s[t], compat,
                                         score, scratch);
    }
    return;
  }
  // Position-ascending S1 row maps, built once per tile call.
  auto& row_class = scratch->row_class;
  auto& row_node = scratch->row_node;
  row_class.resize(n1);
  row_node.resize(n1);
  for (const ClassGroup& ga : s1.groups) {
    for (uint32_t i = ga.begin; i < ga.end; ++i) {
      row_class[s1.pos[i]] = ga.label;
      row_node[s1.pos[i]] = s1.nodes[i];
    }
  }
  if constexpr (kInjective) {
    // Per-tile-entry matching over edges collected through the hoisted row
    // maps. Rows are walked ascending by position rather than group-major:
    // the edge multiset is identical and every matching realization is
    // enumeration-order-free (greedy sorts under a total order keyed on
    // positions, Hungarian consumes a matrix, the tiny closed forms are
    // commutative), so the values match the per-pair evaluation exactly.
    for (size_t t = 0; t < tile; ++t) {
      const GroupedNeighborhood& s2 = s2s[t];
      const size_t n2 = s2.size;
      if (n2 == 0) {
        // n1 > 0 here: kInjectiveRow's vacuous n1 = 0 convention cannot
        // apply, and the one-empty-side value is 0 for both operators.
        out[t] = 0.0;
        continue;
      }
      auto& edges = scratch->edges;
      edges.clear();
      for (size_t p = 0; p < n1; ++p) {
        const NodeId x = row_node[p];
        internal::ForEachCompatRun(
            static_cast<LabelId>(row_class[p]), s2, compat,
            [&](uint32_t rb, uint32_t re) {
              for (uint32_t j = rb; j < re; ++j) {
                const double v = score(x, s2.nodes[j]);
                if (v > 0.0) {
                  edges.push_back({static_cast<uint32_t>(p), s2.pos[j], v});
                }
              }
            });
      }
      double sum;
      if (n1 == 1 || n2 == 1) {
        // Singleton side keeps the best edge (only positive scores can win,
        // so the >0-filtered edge list loses nothing).
        sum = 0.0;
        for (const WeightedEdge& e : edges) {
          if (e.weight > sum) sum = e.weight;
        }
      } else if (!internal::TinyMatchingSum(edges, &sum)) {
        if (algo == MatchingAlgo::kHungarian) {
          scratch->weights.assign(n1 * n2, 0.0);
          for (const WeightedEdge& e : edges) {
            scratch->weights[e.left * n2 + e.right] = e.weight;
          }
          sum = HungarianMaxWeightMatching(scratch->weights.data(), n1, n2);
        } else {
          sum = GreedyMaxWeightMatching(scratch, n1, n2);
        }
      }
      const double omega = OmegaValue(omega_kind, n1, n2);
      FSIM_DCHECK(omega > 0.0);
      out[t] = sum / omega;
    }
  }
  if constexpr (kMaxFamily) {
    constexpr bool kBothSides = M == MappingKind::kMaxBothSides;
    auto& acc = scratch->tile_acc;
    acc.assign(tile, 0.0);
    auto& col_off = scratch->tile_col_offsets;
    auto& col_best = scratch->tile_col_best;
    if constexpr (kBothSides) {
      col_off.resize(tile + 1);
      col_off[0] = 0;
      for (size_t t = 0; t < tile; ++t) {
        col_off[t + 1] = col_off[t] + static_cast<uint32_t>(s2s[t].size);
      }
      col_best.assign(col_off[tile], 0.0);
    }
    for (size_t p = 0; p < n1; ++p) {
      const LabelId a = row_class[p];
      const NodeId x = row_node[p];
      for (size_t t = 0; t < tile; ++t) {
        const GroupedNeighborhood& s2 = s2s[t];
        double best = 0.0;
        internal::ForEachCompatRun(
            a, s2, compat, [&](uint32_t rb, uint32_t re) {
              for (uint32_t j = rb; j < re; ++j) {
                const double v = score(x, s2.nodes[j]);
                if (v > best) best = v;
                if constexpr (kBothSides) {
                  double* cb = col_best.data() + col_off[t];
                  if (v > cb[s2.pos[j]]) cb[s2.pos[j]] = v;
                }
              }
            });
        acc[t] += best;  // rows ascending: the ungrouped row-sum order
      }
    }
    for (size_t t = 0; t < tile; ++t) {
      double sum = acc[t];
      if constexpr (kBothSides) {
        // n1 > 0 here, so the both-empty convention cannot apply.
        const double* cb = col_best.data() + col_off[t];
        const size_t n2 = s2s[t].size;
        for (size_t k = 0; k < n2; ++k) sum += cb[k];
      }
      const double omega = OmegaValue(omega_kind, n1, s2s[t].size);
      FSIM_DCHECK(omega > 0.0);
      out[t] = sum / omega;
    }
  }
}

/// Runtime-dispatched wrapper over DirectionScoreGroupedT.
template <typename ScoreFn>
double DirectionScoreGrouped(const OperatorConfig& op, MatchingAlgo algo,
                             const GroupedNeighborhood& s1,
                             const GroupedNeighborhood& s2,
                             const ClassCompatView& compat, ScoreFn&& score,
                             MatchingScratch* scratch) {
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      return DirectionScoreGroupedT<MappingKind::kMaxPerRow>(
          op.omega, algo, s1, s2, compat, score, scratch);
    case MappingKind::kInjectiveRow:
      return DirectionScoreGroupedT<MappingKind::kInjectiveRow>(
          op.omega, algo, s1, s2, compat, score, scratch);
    case MappingKind::kMaxBothSides:
      return DirectionScoreGroupedT<MappingKind::kMaxBothSides>(
          op.omega, algo, s1, s2, compat, score, scratch);
    case MappingKind::kInjectiveSym:
      return DirectionScoreGroupedT<MappingKind::kInjectiveSym>(
          op.omega, algo, s1, s2, compat, score, scratch);
    case MappingKind::kProduct:
      return DirectionScoreGroupedT<MappingKind::kProduct>(
          op.omega, algo, s1, s2, compat, score, scratch);
  }
  return 0.0;
}

/// Upper bound of one direction's contribution (Eq. 6): DirectionScore with
/// every mappable pair's score over-approximated by 1, i.e. |Mχ| / Ωχ under
/// the label-compatibility relation. |Mχ| itself is over-approximated for
/// the injective operators (min of the side counts), which keeps the bound
/// sound — pruning with a looser bound only prunes less.
template <typename CompatFn>
double DirectionUpperBound(const OperatorConfig& op,
                           std::span<const NodeId> s1,
                           std::span<const NodeId> s2, CompatFn&& compat) {
  const size_t n1 = s1.size();
  const size_t n2 = s2.size();
  auto rows_with_any = [&]() {
    size_t count = 0;
    for (NodeId x : s1) {
      for (NodeId y : s2) {
        if (compat(x, y)) {
          ++count;
          break;
        }
      }
    }
    return count;
  };
  auto cols_with_any = [&]() {
    size_t count = 0;
    for (NodeId y : s2) {
      for (NodeId x : s1) {
        if (compat(x, y)) {
          ++count;
          break;
        }
      }
    }
    return count;
  };

  double mapped = 0.0;
  switch (op.mapping) {
    case MappingKind::kMaxPerRow:
      if (n1 == 0) return 1.0;
      mapped = static_cast<double>(rows_with_any());
      break;
    case MappingKind::kInjectiveRow:
      if (n1 == 0) return 1.0;
      if (n2 == 0) return 0.0;
      mapped = static_cast<double>(
          std::min({rows_with_any(), cols_with_any(), std::min(n1, n2)}));
      break;
    case MappingKind::kMaxBothSides:
      if (n1 == 0 && n2 == 0) return 1.0;
      mapped = static_cast<double>(rows_with_any() + cols_with_any());
      break;
    case MappingKind::kInjectiveSym:
      if (n1 == 0 && n2 == 0) return 1.0;
      if (n1 == 0 || n2 == 0) return 0.0;
      mapped = static_cast<double>(
          std::min({rows_with_any(), cols_with_any(), std::min(n1, n2)}));
      break;
    case MappingKind::kProduct: {
      if (n1 == 0 || n2 == 0) return 0.0;
      size_t count = 0;
      for (NodeId x : s1) {
        for (NodeId y : s2) {
          if (compat(x, y)) ++count;
        }
      }
      mapped = static_cast<double>(count);
      break;
    }
  }
  return mapped / OmegaValue(op.omega, n1, n2);
}

}  // namespace fsim

#endif  // FSIM_CORE_OPERATORS_H_
