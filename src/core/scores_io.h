// Serialization of FSimScores: persist a converged score map to disk and
// reload it later (downstream applications — alignment, matching — reuse
// score maps across runs; recomputing the fixpoint is the expensive part).
//
// Format: a small text header followed by one "u v score" line per pair.
//   fsim-scores v1
//   pairs <n>
//   <u> <v> <score>
//   ...
#ifndef FSIM_CORE_SCORES_IO_H_
#define FSIM_CORE_SCORES_IO_H_

#include <string>

#include "common/result.h"
#include "core/fsim_scores.h"

namespace fsim {

/// Serializes the score map (pairs and values only; run statistics are not
/// persisted).
std::string ScoresToString(const FSimScores& scores);

/// Parses a serialized score map.
Result<FSimScores> ScoresFromString(std::string_view text);

/// File round trip.
Status SaveScoresToFile(const FSimScores& scores, const std::string& path);
Result<FSimScores> LoadScoresFromFile(const std::string& path);

/// Crash-safe save: writes to `path`.tmp, fsyncs, renames over `path`, and
/// fsyncs the parent directory, so readers see either the old file or the
/// complete new one — never a torn write. Use for score files that feed
/// warm starts or recovery (docs/serving.md "Durability & recovery").
Status SaveScoresToFileDurable(const FSimScores& scores,
                               const std::string& path);

}  // namespace fsim

#endif  // FSIM_CORE_SCORES_IO_H_
