#include "core/topk_search.h"

#include <algorithm>
#include <cmath>

#include "common/flat_pair_map.h"
#include "core/fsim_engine.h"
#include "core/init_value.h"
#include "core/operators.h"
#include "graph/traversal.h"
#include "label/label_similarity.h"
#include "matching/greedy_matching.h"

namespace fsim {

Result<TopKResult> TopKSearch(const Graph& g1, const Graph& g2, NodeId source,
                              const FSimConfig& config,
                              const TopKOptions& options) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (source >= g1.NumNodes()) {
    return Status::InvalidArgument("source node out of range");
  }
  const double w = config.w_out + config.w_in;
  uint32_t depth = options.depth;
  if (depth == 0) {
    depth = w <= 0.0
                ? 1
                : static_cast<uint32_t>(std::max(
                      1.0, std::ceil(std::log(config.epsilon) / std::log(w))));
  }

  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);

  // Restricted pair set: left nodes within the radius-`depth` ball of the
  // source (the full dependency cone of FSim^depth(source, ·)).
  auto dist = BfsDistances(g1, source, /*undirected=*/true);
  std::vector<NodeId> ball;
  for (NodeId x = 0; x < g1.NumNodes(); ++x) {
    if (dist[x] != kUnreachable && dist[x] <= depth) ball.push_back(x);
  }
  std::vector<std::vector<NodeId>> by_label(g1.dict()->size());
  for (NodeId v = 0; v < g2.NumNodes(); ++v) {
    by_label[g2.Label(v)].push_back(v);
  }

  std::vector<uint64_t> keys;
  for (NodeId x : ball) {
    if (config.theta <= 0.0) {
      for (NodeId y = 0; y < g2.NumNodes(); ++y) {
        keys.push_back(PairKey(x, y));
      }
    } else {
      for (LabelId l = 0; l < by_label.size(); ++l) {
        if (by_label[l].empty() ||
            !lsim.Compatible(g1.Label(x), static_cast<LabelId>(l),
                             config.theta)) {
          continue;
        }
        for (NodeId y : by_label[l]) keys.push_back(PairKey(x, y));
      }
    }
    if (keys.size() > config.pair_limit) {
      return Status::InvalidArgument("TopKSearch pair limit exceeded");
    }
  }
  std::sort(keys.begin(), keys.end());

  FlatPairMap index(keys.size());
  std::vector<double> prev(keys.size());
  std::vector<double> curr(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    index.Insert(keys[i], static_cast<uint32_t>(i));
    prev[i] =
        InitValue(config, lsim, g1, g2, PairFirst(keys[i]), PairSecond(keys[i]));
  }

  const OperatorConfig op = config.operators();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim.Compatible(g1.Label(x), g2.Label(y), config.theta)) return -1.0;
    const uint32_t idx = index.Find(PairKey(x, y));
    return idx == FlatPairMap::kNotFound ? 0.0 : prev[idx];
  };
  auto label_term = [&](NodeId u, NodeId v) -> double {
    switch (config.label_term) {
      case LabelTermKind::kLabelSim:
        return lsim.Sim(g1.Label(u), g2.Label(v));
      case LabelTermKind::kZero:
        return 0.0;
      case LabelTermKind::kOne:
        return 1.0;
    }
    return 0.0;
  };

  MatchingScratch scratch;
  for (uint32_t iter = 0; iter < depth; ++iter) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const NodeId u = PairFirst(keys[i]);
      const NodeId v = PairSecond(keys[i]);
      const double out_score =
          DirectionScore(op, config.matching, g1.OutNeighbors(u),
                         g2.OutNeighbors(v), lookup, &scratch);
      const double in_score =
          DirectionScore(op, config.matching, g1.InNeighbors(u),
                         g2.InNeighbors(v), lookup, &scratch);
      curr[i] = config.w_out * out_score + config.w_in * in_score +
                label_weight * label_term(u, v);
    }
    prev.swap(curr);
  }

  TopKResult result;
  result.depth = depth;
  result.pairs_computed = keys.size();
  // Corollary 1 tail: the remaining change after `depth` iterations is at
  // most sum_{t > depth} w^t <= w^(depth+1) / (1 - w).
  result.error_bound =
      w <= 0.0 ? 0.0
               : std::min(1.0, std::pow(w, depth + 1) / (1.0 - w));
  const uint64_t lo = PairKey(source, 0);
  const uint64_t hi = PairKey(source, ~0U);
  auto first = std::lower_bound(keys.begin(), keys.end(), lo);
  auto last = std::upper_bound(keys.begin(), keys.end(), hi);
  for (auto it = first; it != last; ++it) {
    const size_t i = static_cast<size_t>(it - keys.begin());
    result.ranking.emplace_back(PairSecond(keys[i]), prev[i]);
  }
  auto cmp = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (result.ranking.size() > options.k) {
    std::partial_sort(result.ranking.begin(),
                      result.ranking.begin() + static_cast<ptrdiff_t>(options.k),
                      result.ranking.end(), cmp);
    result.ranking.resize(options.k);
  } else {
    std::sort(result.ranking.begin(), result.ranking.end(), cmp);
  }
  return result;
}

}  // namespace fsim
