// Label-class indexed acceleration structures for the dense engine
// (core/dense_engine.h) — the dense-mode counterpart of PairStore's
// pair-graph CSR neighbor index.
//
// The dense iterate loop cannot afford a per-pair candidate index (it
// maintains all |V1| x |V2| pairs), so the per-visit label work is removed
// at the *label-class* level instead:
//
//  * LabelClassTable — for each class pair (ℓ1, ℓ2) a θ-thresholded
//    compatibility bit (per-ℓ1 bitsets over ℓ2 classes: compatibility
//    inside Mχ is one bit test, zero hash/string work) plus the hoisted,
//    weight-scaled label term of Equation 1/3 (iteration-invariant);
//  * GroupedAdjacency — each node's out/in neighbor list re-sorted by
//    label class with group offsets (core/operators.h ClassGroup /
//    GroupedNeighborhood), so DirectionScoreGrouped enumerates only
//    compatible (x, y) candidates by intersecting class runs and skips
//    whole incompatible classes instead of testing the full
//    N±(u) x N±(v) cross product.
//
// DenseIndex bundles both, budget-gated by
// FSimConfig::neighbor_index_budget_bytes (the |Σ|² label-term table is
// the quadratic part); when it does not fit, ComputeFSimDense falls back
// to the original per-visit lookup path with identical scores.
#ifndef FSIM_CORE_DENSE_INDEX_H_
#define FSIM_CORE_DENSE_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "core/fsim_config.h"
#include "core/operators.h"
#include "graph/graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// Per-label-class-pair tables: the θ compatibility bitset and the hoisted
/// label term. Both are |Σ| x |Σ| over the shared dictionary, computed once
/// per run.
class LabelClassTable {
 public:
  /// `label_weight` is (1 - w+ - w-); the stored term is pre-scaled so the
  /// iterate loop adds it without a multiply.
  LabelClassTable(const LabelDict& dict, const LabelSimilarityCache& lsim,
                  const FSimConfig& config, double label_weight);

  size_t num_classes() const { return n_; }

  /// The label-constrained mapping test (Remark 2) as one bit test.
  bool Compatible(LabelId a, LabelId b) const {
    return (compat_[a * words_ + (b >> 6)] >> (b & 63)) & 1u;
  }

  /// (1 - w+ - w-) * label_term(a, b), hoisted out of the iterate loop.
  /// The table is not materialized when every entry is provably zero
  /// (label_weight == 0 or LabelTermKind::kZero).
  double WeightedLabelTerm(LabelId a, LabelId b) const {
    return label_term_.empty() ? 0.0 : label_term_[a * n_ + b];
  }

  /// Class a's row of the weighted label-term table, or nullptr when the
  /// table is not materialized — the combine kernel's gather base
  /// (core/simd/kernels.h CombineRowFn; row[b] == WeightedLabelTerm(a, b)).
  const double* WeightedLabelTermRow(LabelId a) const {
    return label_term_.empty() ? nullptr : label_term_.data() + a * n_;
  }

  /// The operators' borrowed view of the bitsets and per-class
  /// compatible-class lists. Valid while this table lives.
  ClassCompatView view() const {
    return ClassCompatView{compat_.data(), words_, compat_offsets_.data(),
                           compat_list_.data()};
  }

  /// Worst-case heap footprint for `num_classes` classes (budget gating):
  /// bitsets + offsets + a full n² compat list, plus the n² label-term
  /// table when `with_label_term` (a zero-valued term materializes no
  /// table).
  static uint64_t EstimateBytes(size_t num_classes, bool with_label_term);

  size_t MemoryBytes() const {
    return compat_.capacity() * sizeof(uint64_t) +
           label_term_.capacity() * sizeof(double) +
           compat_offsets_.capacity() * sizeof(uint32_t) +
           compat_list_.capacity() * sizeof(LabelId);
  }

 private:
  size_t n_ = 0;
  size_t words_ = 0;  // 64-bit words per bitset row
  /// n_ rows of `words_` words. 64-byte aligned: the tile-panel builder
  /// (core/simd/tile_panel.h) streams whole rows when deriving work lists.
  AlignedVector<uint64_t> compat_;
  std::vector<double> label_term_;    // n_ x n_, pre-scaled by label_weight
  std::vector<uint32_t> compat_offsets_;  // n_+1: per-class compat-list CSR
  std::vector<LabelId> compat_list_;      // ascending within each class
};

/// One direction's adjacency of one graph, re-sorted per node by
/// (label class, node id) with class-run offsets. Within a run node ids —
/// and therefore original neighbor-list positions — stay ascending, which
/// DirectionScoreGrouped relies on for order-exact matching tie-breaks.
class GroupedAdjacency {
 public:
  /// Builds the grouped view of N+(·) (`out` = true) or N-(·) over a
  /// dictionary of `num_classes` label classes.
  static GroupedAdjacency Build(const Graph& g, bool out, size_t num_classes);

  /// The grouped view of node u's neighbor set.
  GroupedNeighborhood Neighborhood(NodeId u) const {
    const uint64_t begin = node_offsets_[u];
    return GroupedNeighborhood{
        {groups_.data() + group_offsets_[u], groups_.data() + group_offsets_[u + 1]},
        nodes_.data() + begin,
        pos_.data() + begin,
        class_offsets_.data() + u * (num_classes_ + 1),
        static_cast<size_t>(node_offsets_[u + 1] - begin)};
  }

  size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(NodeId) +
           pos_.capacity() * sizeof(uint32_t) +
           groups_.capacity() * sizeof(ClassGroup) +
           class_offsets_.capacity() * sizeof(uint32_t) +
           node_offsets_.capacity() * sizeof(uint64_t) +
           group_offsets_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t num_classes_ = 0;
  std::vector<uint64_t> node_offsets_;   // |V|+1, into nodes_/pos_
  std::vector<uint64_t> group_offsets_;  // |V|+1, into groups_
  std::vector<NodeId> nodes_;            // neighbors in (class, id) order
  std::vector<uint32_t> pos_;            // original position of nodes_[k]
  std::vector<ClassGroup> groups_;       // class runs, begin/end local to node
  /// Dense per-node class index: (num_classes_+1) cumulative local offsets
  /// per node, so the class-c run of u is [off[c], off[c+1]) with one load.
  std::vector<uint32_t> class_offsets_;
};

/// The dense engine's label-class index: one LabelClassTable plus the
/// grouped adjacency of every direction a run evaluates.
class DenseIndex {
 public:
  /// Builds the index, or returns nullopt when the estimated footprint
  /// exceeds config.neighbor_index_budget_bytes (or the budget is 0) — the
  /// engine then runs the per-visit lookup fallback.
  static std::optional<DenseIndex> Build(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config,
                                         const LabelSimilarityCache& lsim);

  const LabelClassTable& table() const { return table_; }

  GroupedNeighborhood Out1(NodeId u) const { return out1_.Neighborhood(u); }
  GroupedNeighborhood In1(NodeId u) const { return in1_.Neighborhood(u); }
  GroupedNeighborhood Out2(NodeId v) const { return out2_.Neighborhood(v); }
  GroupedNeighborhood In2(NodeId v) const { return in2_.Neighborhood(v); }

  size_t MemoryBytes() const {
    return table_.MemoryBytes() + out1_.MemoryBytes() + in1_.MemoryBytes() +
           out2_.MemoryBytes() + in2_.MemoryBytes();
  }

 private:
  DenseIndex(LabelClassTable table) : table_(std::move(table)) {}

  LabelClassTable table_;
  // Unused directions (zero weight) stay empty — Neighborhood is never
  // called on them.
  GroupedAdjacency out1_, in1_, out2_, in2_;
};

}  // namespace fsim

#endif  // FSIM_CORE_DENSE_INDEX_H_
