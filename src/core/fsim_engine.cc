#include "core/fsim_engine.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/operators.h"
#include "core/pair_store.h"

namespace fsim {

namespace {

/// Corollary 1: the computation converges within ceil(log_{w}(eps))
/// iterations, w = w+ + w-.
uint32_t IterationBound(const FSimConfig& config) {
  if (config.max_iterations > 0) return config.max_iterations;
  const double w = config.w_out + config.w_in;
  if (w <= 0.0) return 1;  // scores are fixed by the label term alone
  double bound = std::ceil(std::log(config.epsilon) / std::log(w));
  return static_cast<uint32_t>(std::max(1.0, bound));
}

/// Cache-line-padded per-worker accumulator (avoids false sharing in the
/// parallel delta reduction).
struct alignas(64) WorkerDelta {
  double value = 0.0;
};

}  // namespace

Status ValidateFSimConfig(const Graph& g1, const Graph& g2,
                          const FSimConfig& config) {
  if (g1.dict() != g2.dict()) {
    return Status::InvalidArgument(
        "graphs must share one LabelDict (build them from a shared "
        "dictionary)");
  }
  if (config.w_out < 0.0 || config.w_in < 0.0 ||
      config.w_out + config.w_in >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "weights must satisfy 0 <= w+, 0 <= w-, w+ + w- < 1 (got %.3f, %.3f)",
        config.w_out, config.w_in));
  }
  if (config.theta < 0.0 || config.theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (config.alpha < 0.0 || config.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1)");
  }
  if (config.beta < 0.0 || config.beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (config.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.pin_diagonal && &g1 != &g2 && g1.NumNodes() != g2.NumNodes()) {
    return Status::InvalidArgument(
        "pin_diagonal requires a self-similarity run");
  }
  return Status::OK();
}

Result<FSimScores> ComputeFSim(const Graph& g1, const Graph& g2,
                               const FSimConfig& config) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));

  Timer build_timer;
  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);
  FSIM_ASSIGN_OR_RETURN(PairStore store,
                        PairStore::Build(g1, g2, config, lsim));

  FSimStats stats;
  stats.theta_candidates = store.info().theta_candidates;
  stats.maintained_pairs = store.info().kept;
  stats.pruned_pairs = store.info().pruned;
  stats.build_seconds = build_timer.Seconds();

  const OperatorConfig op = config.operators();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  const double alpha = config.upper_bound ? config.alpha : 0.0;
  const uint32_t max_iters = IterationBound(config);
  const uint32_t num_threads = static_cast<uint32_t>(config.num_threads);

  // Previous-iteration score of (x, y); negative = not mappable under the
  // label constraint. Pairs pruned by the upper bound contribute
  // alpha * bound (0 with the default alpha = 0).
  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim.Compatible(g1.Label(x), g2.Label(y), config.theta)) return -1.0;
    uint32_t idx = store.Find(x, y);
    if (idx != FlatPairMap::kNotFound) return store.prev(idx);
    if (alpha > 0.0) return alpha * store.PrunedUpperBound(x, y);
    return 0.0;
  };

  auto label_term = [&](NodeId u, NodeId v) -> double {
    switch (config.label_term) {
      case LabelTermKind::kLabelSim:
        return lsim.Sim(g1.Label(u), g2.Label(v));
      case LabelTermKind::kZero:
        return 0.0;
      case LabelTermKind::kOne:
        return 1.0;
    }
    return 0.0;
  };

  Timer iterate_timer;
  ThreadPool pool(config.num_threads);
  std::vector<MatchingScratch> scratch(num_threads);
  std::vector<WorkerDelta> worker_delta(num_threads);

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    for (auto& d : worker_delta) d.value = 0.0;
    pool.ParallelFor(store.size(), [&](size_t i) {
      const uint32_t worker = static_cast<uint32_t>(i % num_threads);
      const NodeId u = store.U(i);
      const NodeId v = store.V(i);
      double value;
      if (config.pin_diagonal && u == v) {
        value = 1.0;
      } else {
        const double out_score =
            DirectionScore(op, config.matching, g1.OutNeighbors(u),
                           g2.OutNeighbors(v), lookup, &scratch[worker]);
        const double in_score =
            DirectionScore(op, config.matching, g1.InNeighbors(u),
                           g2.InNeighbors(v), lookup, &scratch[worker]);
        value = config.w_out * out_score + config.w_in * in_score +
                label_weight * label_term(u, v);
      }
      store.set_curr(i, value);
      const double delta = std::abs(value - store.prev(i));
      if (delta > worker_delta[worker].value) {
        worker_delta[worker].value = delta;
      }
    });
    double max_delta = 0.0;
    for (const auto& d : worker_delta) max_delta = std::max(max_delta, d.value);
    store.SwapBuffers();
    stats.iterations = iter;
    stats.final_delta = max_delta;
    if (config.record_delta_history) stats.delta_history.push_back(max_delta);
    if (max_delta < config.epsilon) {
      stats.converged = true;
      break;
    }
  }
  stats.iterate_seconds = iterate_timer.Seconds();

  return FSimScores(store.TakeKeys(), store.TakeScores(), store.TakeIndex(),
                    std::move(stats));
}

Result<FSimScores> ComputeFSimSelf(const Graph& g, const FSimConfig& config) {
  return ComputeFSim(g, g, config);
}

}  // namespace fsim
