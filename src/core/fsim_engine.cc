#include "core/fsim_engine.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/pair_evaluator.h"
#include "core/pair_store.h"
#include "obs/trace.h"

namespace fsim {

Status ValidateFSimConfig(const Graph& g1, const Graph& g2,
                          const FSimConfig& config) {
  if (g1.dict() != g2.dict()) {
    return Status::InvalidArgument(
        "graphs must share one LabelDict (build them from a shared "
        "dictionary)");
  }
  if (config.w_out < 0.0 || config.w_in < 0.0 ||
      config.w_out + config.w_in >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "weights must satisfy 0 <= w+, 0 <= w-, w+ + w- < 1 (got %.3f, %.3f)",
        config.w_out, config.w_in));
  }
  if (config.theta < 0.0 || config.theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (config.alpha < 0.0 || config.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1)");
  }
  if (config.beta < 0.0 || config.beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (config.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.active_set == ActiveSetMode::kTolerance &&
      config.frontier_tolerance <= 0.0) {
    return Status::InvalidArgument(
        "tolerance-mode active-set iteration needs a positive "
        "frontier_tolerance");
  }
  if (config.frontier_density_threshold < 0.0 ||
      config.frontier_density_threshold > 1.0) {
    return Status::InvalidArgument(
        "frontier_density_threshold must be in [0, 1]");
  }
  if (config.active_set_activation_fraction < 0.0 ||
      config.active_set_activation_fraction > 1.0) {
    return Status::InvalidArgument(
        "active_set_activation_fraction must be in [0, 1]");
  }
  if (config.iterate_grain == 0) {
    return Status::InvalidArgument("iterate_grain must be >= 1");
  }
  if (config.pin_diagonal && &g1 != &g2 && g1.NumNodes() != g2.NumNodes()) {
    return Status::InvalidArgument(
        "pin_diagonal requires a self-similarity run");
  }
  return Status::OK();
}

Result<FSimScores> ComputeFSim(const Graph& g1, const Graph& g2,
                               const FSimConfig& config) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));

  ThreadPool pool(config.num_threads);
  Timer build_timer;
  obs::TraceSpan init_span("engine.init");
  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);
  FSIM_ASSIGN_OR_RETURN(PairStore store,
                        PairStore::Build(g1, g2, config, lsim,
                                         /*build_neighbor_index=*/true,
                                         &pool));

  FSimStats stats;
  stats.theta_candidates = store.info().theta_candidates;
  stats.maintained_pairs = store.info().kept;
  stats.pruned_pairs = store.info().pruned;
  stats.used_neighbor_index = store.has_neighbor_index();
  stats.neighbor_index_bytes =
      store.has_neighbor_index() ? store.NeighborIndexBytes() : 0;
  stats.packed_neighbor_refs =
      store.has_neighbor_index() && store.packed_refs();
  stats.neighbor_index_peak_staging_bytes = store.info().peak_staging_bytes;
  stats.neighbor_index_bounded_build = store.info().bounded_staging_build;
  stats.build_seconds = build_timer.Seconds();
  init_span.End();

  const uint32_t max_iters = FSimIterationBound(config);
  const PairEvaluator evaluator(g1, g2, config, lsim, store);

  Timer iterate_timer;
  ActiveSetDriver driver(pool, store, evaluator, g1, g2, config);
  stats.active_set = driver.active();
  // Pre-reserve the iteration-indexed telemetry: the hard bound is known up
  // front, so the hot loop never reallocates mid-iteration.
  if (config.record_delta_history) stats.delta_history.reserve(max_iters);
  if (driver.active()) stats.active_pairs_history.reserve(max_iters);

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    FSIM_TRACE_SPAN_ARG("engine.iter", iter);
    const double max_delta = driver.Step();
    stats.iterations = iter;
    stats.final_delta = max_delta;
    if (config.record_delta_history) stats.delta_history.push_back(max_delta);
    if (driver.active()) {
      stats.active_pairs_history.push_back(driver.last_evaluated());
    }
    if (max_delta < config.epsilon) {
      stats.converged = true;
      break;
    }
  }
  stats.iterate_seconds = iterate_timer.Seconds();
  stats.frontier_build_seconds = driver.frontier_build_seconds();
  stats.full_sweep_iterations = driver.full_sweeps();
  if (driver.active() && stats.iterations > 0 && store.size() > 0) {
    stats.frozen_fraction =
        1.0 - static_cast<double>(driver.total_evaluated()) /
                  (static_cast<double>(stats.iterations) *
                   static_cast<double>(store.size()));
  }

  return FSimScores(store.TakeKeys(), store.TakeScores(), store.TakeIndex(),
                    std::move(stats));
}

Result<FSimScores> ComputeFSimSelf(const Graph& g, const FSimConfig& config) {
  return ComputeFSim(g, g, config);
}

}  // namespace fsim
