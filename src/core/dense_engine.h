// Dense-mode FSimχ engine: the same iterative computation as ComputeFSim
// (Algorithm 1) carried out over the full |V1| x |V2| score matrix in two
// flat buffers, with no candidate store, no hashing and no pruning.
//
// Purpose:
//  * ablation — quantifies what the sparse candidate store (θ filter,
//    upper-bound updating, hash index) buys on small/medium inputs where the
//    dense matrix fits in memory (see bench/bench_ablation);
//  * differential testing — an independent implementation of Equation 3 whose
//    scores must agree with the sparse engine on every θ-compatible pair
//    (tests/dense_engine_test.cc).
//
// Dense mode computes a score for *every* pair, including label-incompatible
// ones (which the sparse engine does not maintain); those extra scores follow
// the same recurrence but never feed back through the mapping operators, so
// agreement on compatible pairs is exact.
//
// The iterate loop runs on the label-class index of core/dense_index.h —
// per-class compatibility bitsets, a hoisted label-term table and
// class-grouped adjacency, evaluated through DirectionScoreGrouped with the
// v-loop tiled into cache-sized blocks — whenever it fits
// FSimConfig::neighbor_index_budget_bytes; otherwise it falls back to the
// per-visit label-check + dense-lookup path with identical scores
// (FSimStats::used_neighbor_index reports which path ran).
#ifndef FSIM_CORE_DENSE_ENGINE_H_
#define FSIM_CORE_DENSE_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "core/fsim_config.h"
#include "core/fsim_scores.h"
#include "graph/graph.h"

namespace fsim {

/// The converged dense score matrix of a ComputeFSimDense run.
class DenseFSimScores {
 public:
  DenseFSimScores() = default;
  DenseFSimScores(size_t n1, size_t n2, AlignedVector<double> values,
                  FSimStats stats)
      : n1_(n1), n2_(n2), values_(std::move(values)), stats_(std::move(stats)) {
    FSIM_DCHECK(values_.size() == n1_ * n2_);
  }

  size_t n1() const { return n1_; }
  size_t n2() const { return n2_; }

  /// FSimχ(u, v); defined for every pair (dense storage).
  double Score(NodeId u, NodeId v) const {
    FSIM_DCHECK(u < n1_ && v < n2_);
    return values_[static_cast<size_t>(u) * n2_ + v];
  }

  /// The k highest-scoring v for a fixed u, descending (ties by node id).
  std::vector<std::pair<NodeId, double>> TopK(NodeId u, size_t k) const;

  /// Row-major n1 x n2 matrix, 64-byte aligned (the engine's double-buffer
  /// panels are AlignedVector so the vectorized kernels see aligned bases).
  const AlignedVector<double>& values() const { return values_; }
  const FSimStats& stats() const { return stats_; }

 private:
  size_t n1_ = 0;
  size_t n2_ = 0;
  AlignedVector<double> values_;  // row-major, n1 x n2
  FSimStats stats_;
};

/// Computes fractional χ-simulation scores for all |V1| x |V2| pairs with
/// dense-matrix iteration. Semantics match ComputeFSim for every pair the
/// sparse engine maintains; the label-constrained mapping (θ) is honored
/// inside the operators.
///
/// Restrictions: upper-bound updating is not supported in dense mode
/// (config.upper_bound must be false — pruning is exactly what dense mode
/// ablates away), and |V1| * |V2| must not exceed config.pair_limit.
Result<DenseFSimScores> ComputeFSimDense(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config);

}  // namespace fsim

#endif  // FSIM_CORE_DENSE_ENGINE_H_
