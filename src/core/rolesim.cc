#include "core/rolesim.h"

#include <algorithm>

#include "common/logging.h"
#include "matching/greedy_matching.h"

namespace fsim {

std::vector<double> RoleSimScores(const Graph& g, double beta,
                                  uint32_t iterations) {
  FSIM_CHECK(beta > 0.0 && beta < 1.0);
  const size_t n = g.NumNodes();
  std::vector<double> prev(n * n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    double du = static_cast<double>(g.OutDegree(u));
    for (NodeId v = 0; v < n; ++v) {
      double dv = static_cast<double>(g.OutDegree(v));
      prev[u * n + v] = (du == 0.0 && dv == 0.0)
                            ? 1.0
                            : std::min(du, dv) / std::max(du, dv);
    }
  }
  std::vector<double> curr(n * n, 0.0);
  MatchingScratch scratch;

  for (uint32_t iter = 0; iter < iterations; ++iter) {
    for (NodeId u = 0; u < n; ++u) {
      auto nu = g.OutNeighbors(u);
      for (NodeId v = 0; v < n; ++v) {
        auto nv = g.OutNeighbors(v);
        if (nu.empty() && nv.empty()) {
          curr[u * n + v] = 1.0;  // (1-beta)*1 + beta
          continue;
        }
        double matched = 0.0;
        if (!nu.empty() && !nv.empty()) {
          scratch.edges.clear();
          for (size_t i = 0; i < nu.size(); ++i) {
            for (size_t j = 0; j < nv.size(); ++j) {
              double w = prev[static_cast<size_t>(nu[i]) * n + nv[j]];
              if (w > 0.0) {
                scratch.edges.push_back(
                    {static_cast<uint32_t>(i), static_cast<uint32_t>(j), w});
              }
            }
          }
          matched = GreedyMaxWeightMatching(&scratch, nu.size(), nv.size());
        }
        const double denom = static_cast<double>(std::max(nu.size(), nv.size()));
        curr[u * n + v] = (1.0 - beta) * matched / denom + beta;
      }
    }
    prev.swap(curr);
  }
  return prev;
}

}  // namespace fsim
