// Single-source top-k similarity search — the paper's stated future work
// (§7): "end-users are also interested in the top-k similarity search".
//
// For one source node u* the exact FSimχ(u*, ·) row can be obtained without
// materializing the all-pairs computation: after d iterations, FSim^d(u, v)
// depends only on pairs whose left node is within (undirected) distance d of
// u. TopKSearch therefore:
//   1. restricts the candidate-pair set to pairs whose left node lies in the
//      radius-d ball around u* (right nodes only θ-filtered),
//   2. runs d iterations of the standard engine on that restricted set —
//      which reproduces the unrestricted FSim^d(u*, ·) exactly,
//   3. ranks the candidates, carrying the Corollary-1 tail bound
//      |FSim(u*,v) - FSim^d(u*,v)| <= (w+ + w-)^(d+1) / (1 - w+ - w-)
//      as a certified error radius.
#ifndef FSIM_CORE_TOPK_SEARCH_H_
#define FSIM_CORE_TOPK_SEARCH_H_

#include <vector>

#include "common/result.h"
#include "core/fsim_config.h"
#include "graph/graph.h"

namespace fsim {

struct TopKResult {
  /// Candidates sorted by descending approximate score (ties by node id).
  std::vector<std::pair<NodeId, double>> ranking;
  /// Certified bound on |true score - reported score| for every candidate.
  double error_bound = 0.0;
  /// Pairs actually iterated (vs |ball| * |V2| worst case).
  size_t pairs_computed = 0;
  uint32_t depth = 0;
};

struct TopKOptions {
  /// Iteration/locality depth d; 0 derives it from config.epsilon via the
  /// Corollary 1 bound (exact up to epsilon).
  uint32_t depth = 0;
  size_t k = 10;
};

/// Computes the top-k nodes of g2 most similar to `source` in g1 under the
/// given FSim configuration (config.max_iterations/num_threads are ignored;
/// the depth controls both locality and iterations).
Result<TopKResult> TopKSearch(const Graph& g1, const Graph& g2, NodeId source,
                              const FSimConfig& config,
                              const TopKOptions& options = {});

}  // namespace fsim

#endif  // FSIM_CORE_TOPK_SEARCH_H_
