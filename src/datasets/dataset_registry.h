// Synthetic, deterministically seeded analogs of the paper's eight public
// datasets (Table 4). The real datasets (KONECT/SNAP/AMiner downloads) are
// not available offline, so each analog reproduces the dataset's statistical
// shape — label multiplicity, average degree, heavy-tailed in/out-degree —
// scaled down to this machine (see DESIGN.md "Substitutions"). Experiments
// depend on these shape parameters, not on the concrete edges.
#ifndef FSIM_DATASETS_DATASET_REGISTRY_H_
#define FSIM_DATASETS_DATASET_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace fsim {

/// One dataset analog: the paper's published statistics plus the scaled
/// parameters we generate with.
struct DatasetSpec {
  std::string name;
  // Published statistics (Table 4).
  size_t paper_nodes = 0;
  size_t paper_edges = 0;
  size_t paper_labels = 0;
  // Scaled generation parameters.
  uint32_t nodes = 0;
  uint64_t edges = 0;
  uint32_t labels = 0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  double label_skew = 1.0;
  uint64_t seed = 0;
};

/// The eight analogs in Table 4 order: yeast, cora, wiki, jdk, nell, gp,
/// amazon, acmcit.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec by name; NotFound for unknown names.
Result<DatasetSpec> DatasetSpecByName(std::string_view name);

/// Generates the analog graph for a spec (deterministic in the spec's seed).
Graph MakeDataset(const DatasetSpec& spec);

/// Convenience: generate by name, aborting on unknown names.
Graph MakeDatasetByName(std::string_view name);

}  // namespace fsim

#endif  // FSIM_DATASETS_DATASET_REGISTRY_H_
