#include "datasets/dbis.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

double DbisGraph::Relevance(uint32_t subject, uint32_t other) const {
  FSIM_CHECK(subject < venues.size() && other < venues.size());
  // Duplicates of the flagship venue are the venue itself.
  auto canonical = [&](uint32_t idx) {
    for (uint32_t dup : flagship_dups) {
      if (idx == dup) return flagship;
    }
    return idx;
  };
  const uint32_t a = canonical(subject);
  const uint32_t b = canonical(other);
  if (a == b) return 2.0;
  if (venue_area[a] != venue_area[b]) return 0.0;
  return venue_tier[a] == venue_tier[b] ? 2.0 : 1.0;
}

DbisGraph MakeDbis(const DbisOptions& opts) {
  FSIM_CHECK(opts.num_areas >= 1 && opts.venues_per_area >= 4);
  Rng rng(opts.seed);
  DbisGraph out;
  GraphBuilder builder;

  // --- Venues. Tier layout per area: 2 top, 4 mid, rest low. ---
  const LabelId venue_label = builder.dict()->Intern("V");
  const LabelId paper_label = builder.dict()->Intern("P");
  for (uint32_t area = 0; area < opts.num_areas; ++area) {
    for (uint32_t k = 0; k < opts.venues_per_area; ++k) {
      NodeId node = builder.AddNodeWithLabelId(venue_label);
      uint32_t idx = static_cast<uint32_t>(out.venues.size());
      out.venues.push_back(node);
      out.venue_names.push_back(
          (area == 0 && k == 0) ? "WWW" : StrFormat("V%u_%u", area, k));
      out.venue_area.push_back(area);
      out.venue_tier.push_back(k < 2 ? 0u : (k < 6 ? 1u : 2u));
      if (area == 0 && k == 0) out.flagship = idx;
    }
  }
  // Flagship duplicate ids (the WWW1/WWW2/WWW3 artifact): same area, top
  // tier, sharing WWW's community below.
  for (uint32_t d = 0; d < opts.flagship_duplicates; ++d) {
    NodeId node = builder.AddNodeWithLabelId(venue_label);
    uint32_t idx = static_cast<uint32_t>(out.venues.size());
    out.venues.push_back(node);
    out.venue_names.push_back(StrFormat("WWW%u", d + 1));
    out.venue_area.push_back(out.venue_area[out.flagship]);
    out.venue_tier.push_back(0);
    out.flagship_dups.push_back(idx);
  }

  // --- Authors: unique name labels, one primary area (plus an occasional
  // secondary), which drives venue co-authorship communities. ---
  std::vector<std::vector<NodeId>> area_authors(opts.num_areas);
  ZipfSampler area_sampler(opts.num_areas, 0.7);
  for (uint32_t i = 0; i < opts.num_authors; ++i) {
    NodeId node = builder.AddNode(StrFormat("a%u", i));
    out.authors.push_back(node);
    uint32_t primary = static_cast<uint32_t>(area_sampler.Sample(&rng));
    area_authors[primary].push_back(node);
    if (rng.NextBernoulli(0.3)) {
      uint32_t secondary =
          static_cast<uint32_t>(rng.NextBounded(opts.num_areas));
      if (secondary != primary) area_authors[secondary].push_back(node);
    }
  }
  for (auto& pool : area_authors) {
    FSIM_CHECK(!pool.empty()) << "an area ended up with no authors";
  }

  // Venue popularity within an area: top tiers attract more papers, with a
  // per-venue multiplier so venue volumes vary realistically — without it
  // every area has size-twin venues and structural measures conflate them
  // across areas.
  std::vector<std::vector<uint32_t>> area_venues(opts.num_areas);
  for (uint32_t idx = 0; idx < out.venues.size(); ++idx) {
    area_venues[out.venue_area[idx]].push_back(idx);
  }
  std::vector<std::vector<double>> area_venue_cdf(opts.num_areas);
  for (uint32_t area = 0; area < opts.num_areas; ++area) {
    double total = 0.0;
    for (size_t rank = 0; rank < area_venues[area].size(); ++rank) {
      const double jitter = 0.35 + rng.NextDouble() * 2.2;
      total += jitter / static_cast<double>(rank + 1);
      area_venue_cdf[area].push_back(total);
    }
    for (double& c : area_venue_cdf[area]) c /= total;
  }
  auto sample_venue = [&](uint32_t area) {
    const double r = rng.NextDouble();
    const auto& cdf = area_venue_cdf[area];
    size_t lo = 0;
    while (lo + 1 < cdf.size() && cdf[lo] < r) ++lo;
    return area_venues[area][lo];
  };

  // Each venue publishes from its own author community: a contiguous slice
  // of the area pool (overlapping with the slices of related venues).
  // Flagship duplicates reuse the flagship's slice verbatim — they are the
  // same venue, so they share exactly the same community.
  // Areas are structurally distinctive, as real research fields are: they
  // differ in co-authorship norms (max authors per paper) and community
  // tightness (slice width). Without this every area is generated alike and
  // structural role similarity conflates venues across areas.
  std::vector<uint32_t> area_max_authors(opts.num_areas);
  std::vector<double> area_slice_frac(opts.num_areas);
  for (uint32_t area = 0; area < opts.num_areas; ++area) {
    area_max_authors[area] =
        1 + (area * 2 + 1) % std::max(1u, opts.max_authors_per_paper + 1);
    area_slice_frac[area] = 0.25 + 0.08 * static_cast<double>(area % 4);
  }

  struct Community {
    size_t start;
    size_t length;
  };
  std::vector<Community> communities(out.venues.size());
  for (uint32_t idx = 0; idx < out.venues.size(); ++idx) {
    const uint32_t area = out.venue_area[idx];
    const auto& pool = area_authors[area];
    const size_t len = std::max<size_t>(
        10, static_cast<size_t>(static_cast<double>(pool.size()) *
                                area_slice_frac[area]));
    const auto& venues_here = area_venues[area];
    size_t rank = 0;
    for (size_t r = 0; r < venues_here.size(); ++r) {
      if (venues_here[r] == idx) rank = r;
    }
    communities[idx] = {(rank * pool.size()) / (venues_here.size() + 1),
                        len};
  }
  for (uint32_t dup : out.flagship_dups) {
    communities[dup] = communities[out.flagship];
  }

  // --- Papers: venue by area+prominence, authors from the venue's
  // community. ---
  for (uint32_t p = 0; p < opts.num_papers; ++p) {
    NodeId paper = builder.AddNodeWithLabelId(paper_label);
    out.papers.push_back(paper);
    uint32_t area = static_cast<uint32_t>(area_sampler.Sample(&rng));
    uint32_t vidx = sample_venue(area);
    // Papers routed to the flagship get split uniformly across its ids —
    // exactly the DBIS artifact that makes WWW1..3 "naturally similar" to
    // WWW: the same venue recorded under several ids with comparable
    // volumes and one shared author community.
    if (vidx == out.flagship && !out.flagship_dups.empty()) {
      const uint32_t slot = static_cast<uint32_t>(
          rng.NextBounded(out.flagship_dups.size() + 1));
      if (slot > 0) vidx = out.flagship_dups[slot - 1];
    }
    builder.AddEdge(paper, out.venues[vidx]);

    const auto& pool = area_authors[area];
    const Community& community = communities[vidx];
    ZipfSampler author_sampler(community.length, 0.8);
    uint32_t num_authors = static_cast<uint32_t>(
        1 + rng.NextBounded(area_max_authors[area]));
    for (uint32_t a = 0; a < num_authors; ++a) {
      const size_t offset =
          (community.start + author_sampler.Sample(&rng)) % pool.size();
      builder.AddEdge(pool[offset], paper);
    }
  }

  out.graph = std::move(builder).BuildOrDie();
  out.venue_index_of_node.assign(out.graph.NumNodes(), kInvalidNode);
  for (uint32_t idx = 0; idx < out.venues.size(); ++idx) {
    out.venue_index_of_node[out.venues[idx]] = idx;
  }
  return out;
}

}  // namespace fsim
