#include "datasets/dataset_registry.h"

#include "common/logging.h"
#include "graph/generators.h"

namespace fsim {

namespace {

// Scaled-down shapes of Table 4. Node counts target single-core bench
// runtimes of seconds per experiment; degree caps are scaled with sqrt-ish
// damping so the hub structure survives without making single pairs
// quadratically dominant. Label counts are kept exact where feasible
// (ACMCit's 72K labels become 1000 — still "far more labels than the
// others", which is the property the experiments exercise).
const std::vector<DatasetSpec>& Specs() {
  static const std::vector<DatasetSpec> kSpecs = {
      // name     paperV   paperE   paperL  V     E      L    D+   D-   skew seed
      {"yeast", 2361, 7182, 13, 800, 2400, 13, 30, 25, 0.8, 0xA0001},
      {"cora", 23166, 91500, 70, 1500, 6000, 70, 50, 120, 0.9, 0xA0002},
      {"wiki", 4592, 119882, 120, 800, 4000, 120, 60, 150, 1.0, 0xA0003},
      {"jdk", 6434, 150985, 41, 900, 4200, 41, 70, 300, 1.0, 0xA0004},
      {"nell", 75492, 154213, 269, 800, 2000, 269, 60, 90, 1.0, 0xA0005},
      {"gp", 144879, 298564, 8, 1500, 3500, 8, 60, 300, 0.7, 0xA0006},
      {"amazon", 554790, 1788725, 82, 8000, 26000, 82, 5, 60, 0.9, 0xA0007},
      {"acmcit", 1462947, 9671895, 72000, 6000, 28000, 800, 80, 600, 1.1,
       0xA0008},
  };
  return kSpecs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() { return Specs(); }

Result<DatasetSpec> DatasetSpecByName(std::string_view name) {
  for (const auto& spec : Specs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + std::string(name));
}

Graph MakeDataset(const DatasetSpec& spec) {
  PowerLawOptions opts;
  opts.n = spec.nodes;
  opts.avg_degree =
      static_cast<double>(spec.edges) / static_cast<double>(spec.nodes);
  opts.max_out_degree = spec.max_out_degree;
  opts.max_in_degree = spec.max_in_degree;
  opts.exponent = 2.1;
  LabelingOptions labels;
  labels.num_labels = spec.labels;
  labels.skew = spec.label_skew;
  return PowerLawGraph(opts, labels, spec.seed);
}

Graph MakeDatasetByName(std::string_view name) {
  Result<DatasetSpec> spec = DatasetSpecByName(name);
  FSIM_CHECK(spec.ok()) << spec.status().ToString();
  return MakeDataset(*spec);
}

}  // namespace fsim
