// DBIS-style heterogeneous bibliographic network for the node-similarity
// case study (Tables 7 and 8). The real DBIS dataset (60,694 authors /
// 72,902 papers / 464 venues) is substituted by a generated network with the
// same schema (author -> paper -> venue edges; venues labeled "V", papers
// "P", authors by their unique names) plus the two artifacts the experiments
// rely on:
//  * research-area/tier community structure providing the nDCG ground truth
//    (relevance 2 = same area & same tier, 1 = same area, 0 = otherwise);
//  * duplicate ids of the flagship venue ("WWW" also appears as WWW1, WWW2,
//    WWW3 sharing WWW's author community), which Table 7's top-5 query
//    probes.
#ifndef FSIM_DATASETS_DBIS_H_
#define FSIM_DATASETS_DBIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fsim {

struct DbisOptions {
  uint32_t num_areas = 5;
  uint32_t venues_per_area = 12;
  /// Kept low relative to num_papers so authors are prolific (the real DBIS
  /// has ~1.2 papers per author per year but authors span many years and
  /// venues; co-author overlap is what carries venue similarity).
  uint32_t num_authors = 400;
  uint32_t num_papers = 1000;
  uint32_t max_authors_per_paper = 4;
  /// Number of duplicate ids of the flagship venue (the WWW1..WWW3 artifact).
  uint32_t flagship_duplicates = 3;
  uint64_t seed = 0xDB15;
};

/// The generated network plus ground-truth metadata.
struct DbisGraph {
  Graph graph;

  std::vector<NodeId> venues;            // node ids of all venues
  std::vector<std::string> venue_names;  // parallel to `venues`
  std::vector<uint32_t> venue_area;      // research area id
  std::vector<uint32_t> venue_tier;      // 0 = top, 1 = mid, 2 = low

  /// Index (into `venues`) of the flagship venue and its duplicate ids.
  uint32_t flagship = 0;
  std::vector<uint32_t> flagship_dups;

  std::vector<NodeId> papers;
  std::vector<NodeId> authors;

  /// Venue index for a venue node id (or kInvalidNode).
  std::vector<NodeId> venue_index_of_node;

  /// Graded relevance of venue j w.r.t. subject venue i (the Table 8 ground
  /// truth): 2 if same area and same tier, 1 if same area, 0 otherwise.
  /// Duplicates of the same venue are always relevance 2.
  double Relevance(uint32_t subject, uint32_t other) const;
};

/// Generates the network. Edges: author -> paper (authorship) and paper ->
/// venue (published-in), so venues see papers as in-neighbors and papers see
/// authors as in-neighbors.
DbisGraph MakeDbis(const DbisOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_DATASETS_DBIS_H_
