#include "measures/isorank.h"

#include "common/logging.h"

namespace fsim {

std::vector<double> IsoRankScores(const Graph& g1, const Graph& g2,
                                  const IsoRankOptions& opts) {
  FSIM_CHECK(g1.dict() == g2.dict());
  const Graph u1 = g1.AsUndirected();
  const Graph u2 = g2.AsUndirected();
  const size_t n1 = u1.NumNodes();
  const size_t n2 = u2.NumNodes();

  std::vector<double> prev(n1 * n2);
  std::vector<double> curr(n1 * n2);
  auto h = [&](NodeId u, NodeId v) {
    return u1.Label(u) == u2.Label(v) ? 1.0 : 0.0;
  };
  for (NodeId u = 0; u < n1; ++u) {
    for (NodeId v = 0; v < n2; ++v) {
      prev[u * n2 + v] = h(u, v);
    }
  }

  std::vector<double> inv_deg1(n1), inv_deg2(n2);
  for (NodeId u = 0; u < n1; ++u) {
    inv_deg1[u] = u1.OutDegree(u) > 0
                      ? 1.0 / static_cast<double>(u1.OutDegree(u))
                      : 0.0;
  }
  for (NodeId v = 0; v < n2; ++v) {
    inv_deg2[v] = u2.OutDegree(v) > 0
                      ? 1.0 / static_cast<double>(u2.OutDegree(v))
                      : 0.0;
  }

  for (uint32_t iter = 0; iter < opts.iterations; ++iter) {
    double max_value = 0.0;
    for (NodeId u = 0; u < n1; ++u) {
      auto nu = u1.OutNeighbors(u);
      for (NodeId v = 0; v < n2; ++v) {
        auto nv = u2.OutNeighbors(v);
        double acc = 0.0;
        for (NodeId up : nu) {
          for (NodeId vp : nv) {
            acc += prev[static_cast<size_t>(up) * n2 + vp] * inv_deg1[up] *
                   inv_deg2[vp];
          }
        }
        const double value =
            opts.alpha * acc + (1.0 - opts.alpha) * h(u, v);
        curr[u * n2 + v] = value;
        if (value > max_value) max_value = value;
      }
    }
    // The power iteration is only meaningful up to scale (the published
    // algorithm renormalizes the similarity vector each round); max-
    // normalizing keeps scores in [0, 1] without changing the ranking.
    if (max_value > 1.0) {
      for (auto& value : curr) value /= max_value;
    }
    prev.swap(curr);
  }
  return prev;
}

}  // namespace fsim
