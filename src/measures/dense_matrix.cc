#include "measures/dense_matrix.h"

namespace fsim {

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  FSIM_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double x = data_[i * cols_ + k];
      if (x == 0.0) continue;
      const double* row_k = &other.data_[k * other.cols_];
      double* row_out = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) {
        row_out[j] += x * row_k[j];
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::GramWithTranspose() const {
  DenseMatrix out(rows_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i; j < rows_; ++j) {
      double sum = 0.0;
      const double* ri = &data_[i * cols_];
      const double* rj = &data_[j * cols_];
      for (size_t k = 0; k < cols_; ++k) sum += ri[k] * rj[k];
      out.At(i, j) = sum;
      out.At(j, i) = sum;
    }
  }
  return out;
}

void DenseMatrix::NormalizeRows() {
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += data_[i * cols_ + j];
    if (sum == 0.0) continue;
    for (size_t j = 0; j < cols_; ++j) data_[i * cols_ + j] /= sum;
  }
}

}  // namespace fsim
