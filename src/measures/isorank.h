// IsoRank [Singh, Xu & Berger 2008] — the classic network-alignment node
// similarity discussed in the paper's related work: the similarity of (u, v)
// is the degree-weighted average of their neighbors' similarities, mixed
// with an attribute prior:
//   s_{k+1}(u,v) = alpha * Σ_{u'∈N(u), v'∈N(v)} s_k(u',v') / (d(u') d(v'))
//                + (1 - alpha) * h(u,v),
// on undirected adaptations, with h the label-agreement indicator. Included
// as an additional cross-check baseline for the similarity/alignment case
// studies (not part of the paper's own tables).
#ifndef FSIM_MEASURES_ISORANK_H_
#define FSIM_MEASURES_ISORANK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

struct IsoRankOptions {
  double alpha = 0.85;
  uint32_t iterations = 12;
};

/// Dense |V1| x |V2| IsoRank matrix (row-major). Intended for small/medium
/// graphs; the case-study graphs fit comfortably.
std::vector<double> IsoRankScores(const Graph& g1, const Graph& g2,
                                  const IsoRankOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_MEASURES_ISORANK_H_
