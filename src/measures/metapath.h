// Meta-path based node-similarity baselines of the case study (§5.4, Tables
// 7-8): PathSim [41], JoinSim [42] and PCRW [40], computed for venue-venue
// similarity over a DBIS-style network along the meta-path
// V - P - A - P - V ("venues sharing authors").
#ifndef FSIM_MEASURES_METAPATH_H_
#define FSIM_MEASURES_METAPATH_H_

#include "datasets/dbis.h"
#include "measures/dense_matrix.h"

namespace fsim {

/// Venue x venue matrices of the three baselines over a DBIS network.
/// Row/column index = venue index (DbisGraph::venues order).
struct MetaPathScores {
  DenseMatrix pathsim;  // 2 M_ij / (M_ii + M_jj)
  DenseMatrix joinsim;  // M_ij / sqrt(M_ii M_jj)
  DenseMatrix pcrw;     // random-walk probability along the meta-path
};

/// Computes all three from the commuting matrix M = W W^T, where
/// W[v][a] = number of papers author a published in venue v.
MetaPathScores ComputeMetaPathScores(const DbisGraph& dbis);

}  // namespace fsim

#endif  // FSIM_MEASURES_METAPATH_H_
