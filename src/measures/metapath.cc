#include "measures/metapath.h"

#include <cmath>

#include "common/logging.h"

namespace fsim {

MetaPathScores ComputeMetaPathScores(const DbisGraph& dbis) {
  const size_t nv = dbis.venues.size();
  const size_t np = dbis.papers.size();
  const size_t na = dbis.authors.size();

  // Dense node-id -> type-local index maps.
  std::vector<uint32_t> paper_index(dbis.graph.NumNodes(), ~0U);
  for (size_t i = 0; i < np; ++i) paper_index[dbis.papers[i]] = static_cast<uint32_t>(i);
  std::vector<uint32_t> author_index(dbis.graph.NumNodes(), ~0U);
  for (size_t i = 0; i < na; ++i) author_index[dbis.authors[i]] = static_cast<uint32_t>(i);

  // Incidence matrices from the edge lists: author -> paper, paper -> venue.
  DenseMatrix venue_paper(nv, np);  // 1 if paper published in venue
  DenseMatrix paper_author(np, na);
  for (size_t vi = 0; vi < nv; ++vi) {
    for (NodeId p : dbis.graph.InNeighbors(dbis.venues[vi])) {
      uint32_t pi = paper_index[p];
      FSIM_DCHECK(pi != ~0U);
      venue_paper.At(vi, pi) = 1.0;
    }
  }
  for (size_t pi = 0; pi < np; ++pi) {
    for (NodeId a : dbis.graph.InNeighbors(dbis.papers[pi])) {
      uint32_t ai = author_index[a];
      FSIM_DCHECK(ai != ~0U);
      paper_author.At(pi, ai) = 1.0;
    }
  }

  // W[v][a] = #papers of author a in venue v; M = W W^T counts the
  // V-P-A-P-V meta-paths between venue pairs.
  DenseMatrix w = venue_paper.Multiply(paper_author);
  DenseMatrix m = w.GramWithTranspose();

  MetaPathScores out;
  out.pathsim = DenseMatrix(nv, nv);
  out.joinsim = DenseMatrix(nv, nv);
  for (size_t i = 0; i < nv; ++i) {
    for (size_t j = 0; j < nv; ++j) {
      const double mij = m.At(i, j);
      const double mii = m.At(i, i);
      const double mjj = m.At(j, j);
      out.pathsim.At(i, j) =
          (mii + mjj) > 0.0 ? 2.0 * mij / (mii + mjj) : 0.0;
      out.joinsim.At(i, j) =
          (mii > 0.0 && mjj > 0.0) ? mij / std::sqrt(mii * mjj) : 0.0;
    }
  }

  // PCRW: uniform random walk along V->P->A->P->V using row-normalized
  // transition matrices (each hop reverses or follows the edge type).
  DenseMatrix t_vp = venue_paper;          // venue -> its papers
  DenseMatrix t_pa = paper_author;         // paper -> its authors
  DenseMatrix t_ap(na, np);                // author -> their papers
  DenseMatrix t_pv(np, nv);                // paper -> its venue
  for (size_t pi = 0; pi < np; ++pi) {
    for (size_t ai = 0; ai < na; ++ai) {
      if (paper_author.At(pi, ai) > 0.0) t_ap.At(ai, pi) = 1.0;
    }
    for (size_t vi = 0; vi < nv; ++vi) {
      if (venue_paper.At(vi, pi) > 0.0) t_pv.At(pi, vi) = 1.0;
    }
  }
  t_vp.NormalizeRows();
  t_pa.NormalizeRows();
  t_ap.NormalizeRows();
  t_pv.NormalizeRows();
  out.pcrw = t_vp.Multiply(t_pa).Multiply(t_ap).Multiply(t_pv);
  return out;
}

}  // namespace fsim
