// nSimGram-style q-gram node similarity [43]: each node gets a profile of
// label-sequence q-grams collected from the paths entering it (length-q
// backward walks); two nodes are similar when their profiles overlap
// (weighted Jaccard). Captures more topology than 1-hop measures, which is
// what the paper credits nSimGram for.
#ifndef FSIM_MEASURES_QGRAM_H_
#define FSIM_MEASURES_QGRAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// Sparse q-gram count profile: hash of the label sequence -> count.
using QGramProfile = std::unordered_map<uint64_t, uint32_t>;

/// Profiles of every node: all label sequences of in-coming paths with up to
/// `q` nodes (the node itself included, so q=1 is just the node's label).
/// Path enumeration per node is capped at `max_paths` to bound the cost on
/// hub nodes.
std::vector<QGramProfile> QGramProfiles(const Graph& g, uint32_t q,
                                        size_t max_paths = 100000);

/// Weighted Jaccard similarity of two profiles:
/// Σ min(c1,c2) / Σ max(c1,c2); 1 when both are empty.
double QGramSimilarity(const QGramProfile& a, const QGramProfile& b);

}  // namespace fsim

#endif  // FSIM_MEASURES_QGRAM_H_
