#include "measures/qgram.h"

#include <algorithm>

#include "common/hash.h"

namespace fsim {

namespace {

/// DFS over backward (in-neighbor) paths, recording the q-gram of every
/// prefix. `hash_chain` carries the incremental label-sequence hash.
void CollectPaths(const Graph& g, NodeId node, uint32_t remaining,
                  uint64_t hash_chain, size_t* budget, QGramProfile* profile) {
  if (*budget == 0) return;
  const uint64_t h = HashCombine(hash_chain, Mix64(g.Label(node) + 1));
  ++(*profile)[h];
  --(*budget);
  if (remaining == 0) return;
  for (NodeId w : g.InNeighbors(node)) {
    CollectPaths(g, w, remaining - 1, h, budget, profile);
    if (*budget == 0) return;
  }
}

}  // namespace

std::vector<QGramProfile> QGramProfiles(const Graph& g, uint32_t q,
                                        size_t max_paths) {
  std::vector<QGramProfile> profiles(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    size_t budget = max_paths;
    CollectPaths(g, u, q > 0 ? q - 1 : 0, 0x51D2C0FFEEULL, &budget,
                 &profiles[u]);
  }
  return profiles;
}

double QGramSimilarity(const QGramProfile& a, const QGramProfile& b) {
  if (a.empty() && b.empty()) return 1.0;
  double min_sum = 0.0;
  double max_sum = 0.0;
  for (const auto& [gram, count] : a) {
    auto it = b.find(gram);
    const uint32_t other = it == b.end() ? 0 : it->second;
    min_sum += std::min(count, other);
    max_sum += std::max(count, other);
  }
  for (const auto& [gram, count] : b) {
    if (a.find(gram) == a.end()) max_sum += count;
  }
  return max_sum == 0.0 ? 0.0 : min_sum / max_sum;
}

}  // namespace fsim
