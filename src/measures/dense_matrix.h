// Small dense double matrix with the products needed by the meta-path
// similarity baselines (PathSim/JoinSim/PCRW run over heterogeneous networks
// whose typed layers — venues, papers, authors — are small enough for dense
// algebra).
#ifndef FSIM_MEASURES_DENSE_MATRIX_H_
#define FSIM_MEASURES_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace fsim {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) {
    FSIM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    FSIM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// this * other.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// this * this^T (Gram matrix; the commuting matrix of a symmetric
  /// meta-path).
  DenseMatrix GramWithTranspose() const;

  /// Divides every row by its sum (rows summing to 0 stay zero) — the
  /// uniform random-walk transition normalization of PCRW.
  void NormalizeRows();

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace fsim

#endif  // FSIM_MEASURES_DENSE_MATRIX_H_
