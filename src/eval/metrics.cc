#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fsim {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  FSIM_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n == 0) return 0.0;
  double mean_x = 0.0, mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double cov = 0.0, var_x = 0.0, var_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x == 0.0 && var_y == 0.0) return 1.0;  // both constant
  if (var_x == 0.0 || var_y == 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double NDCG(const std::vector<double>& ranked, std::vector<double> ideal,
            size_t k) {
  auto dcg = [&](const std::vector<double>& rel) {
    double sum = 0.0;
    const size_t limit = std::min(k, rel.size());
    for (size_t i = 0; i < limit; ++i) {
      sum += (std::pow(2.0, rel[i]) - 1.0) / std::log2(static_cast<double>(i) + 2.0);
    }
    return sum;
  };
  std::sort(ideal.begin(), ideal.end(), std::greater<>());
  const double ideal_dcg = dcg(ideal);
  if (ideal_dcg == 0.0) return 0.0;
  return dcg(ranked) / ideal_dcg;
}

double F1Score(double precision, double recall) {
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double CorrelateScores(const FSimScores& reference, const FSimScores& other,
                       double missing_value) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(reference.NumPairs());
  y.reserve(reference.NumPairs());
  const auto& keys = reference.keys();
  const auto& values = reference.values();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    x.push_back(values[i]);
    y.push_back(other.Contains(u, v) ? other.Score(u, v) : missing_value);
  }
  return PearsonCorrelation(x, y);
}

namespace {

/// Counts "swaps" (discordant steps) while merge-sorting `v` ascending —
/// Knight's algorithm core. Each swap is one discordant pair.
uint64_t MergeCountSwaps(std::vector<double>* v, std::vector<double>* scratch,
                         size_t lo, size_t hi) {
  if (hi - lo <= 1) return 0;
  const size_t mid = lo + (hi - lo) / 2;
  uint64_t swaps = MergeCountSwaps(v, scratch, lo, mid) +
                   MergeCountSwaps(v, scratch, mid, hi);
  size_t i = lo, j = mid, out = lo;
  while (i < mid && j < hi) {
    if ((*v)[j] < (*v)[i]) {
      swaps += mid - i;  // (*v)[i..mid) all exceed (*v)[j]
      (*scratch)[out++] = (*v)[j++];
    } else {
      (*scratch)[out++] = (*v)[i++];
    }
  }
  while (i < mid) (*scratch)[out++] = (*v)[i++];
  while (j < hi) (*scratch)[out++] = (*v)[j++];
  std::copy(scratch->begin() + static_cast<ptrdiff_t>(lo),
            scratch->begin() + static_cast<ptrdiff_t>(hi),
            v->begin() + static_cast<ptrdiff_t>(lo));
  return swaps;
}

/// Σ over tie groups of g*(g-1)/2 in a sorted sample.
uint64_t TiedPairs(const std::vector<double>& sorted) {
  uint64_t ties = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    const uint64_t g = j - i;
    ties += g * (g - 1) / 2;
    i = j;
  }
  return ties;
}

}  // namespace

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  FSIM_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;

  // Sort jointly by (x, y); then discordant pairs are exactly the inversion
  // swaps of the y sequence, excluding pairs tied in x.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Tied pairs in x, and pairs tied in both (to correct the joint count).
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = x[order[i]];
    ys[i] = y[order[i]];
  }
  const uint64_t n0 = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t ties_x = 0;
  uint64_t ties_xy = 0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && xs[j] == xs[i]) ++j;
      const uint64_t g = j - i;
      ties_x += g * (g - 1) / 2;
      // Within an x-tie group the ys are sorted; count joint ties.
      size_t a = i;
      while (a < j) {
        size_t b = a + 1;
        while (b < j && ys[b] == ys[a]) ++b;
        const uint64_t h = b - a;
        ties_xy += h * (h - 1) / 2;
        a = b;
      }
      i = j;
    }
  }

  std::vector<double> y_seq = ys;
  std::vector<double> y_sorted = ys;
  std::sort(y_sorted.begin(), y_sorted.end());
  const uint64_t ties_y = TiedPairs(y_sorted);

  std::vector<double> scratch(n);
  const uint64_t discordant = MergeCountSwaps(&y_seq, &scratch, 0, n);

  // C - D = n0 - ties_x - ties_y + ties_xy - 2D  (standard identity).
  const double concordant_minus_discordant =
      static_cast<double>(n0) - static_cast<double>(ties_x) -
      static_cast<double>(ties_y) + static_cast<double>(ties_xy) -
      2.0 * static_cast<double>(discordant);
  const double denom_x = static_cast<double>(n0 - ties_x);
  const double denom_y = static_cast<double>(n0 - ties_y);
  if (denom_x <= 0.0 || denom_y <= 0.0) return 0.0;
  return concordant_minus_discordant / std::sqrt(denom_x * denom_y);
}

double KendallTauScores(const FSimScores& reference, const FSimScores& other,
                        double missing_value) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(reference.NumPairs());
  y.reserve(reference.NumPairs());
  const auto& keys = reference.keys();
  const auto& values = reference.values();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    x.push_back(values[i]);
    y.push_back(other.Contains(u, v) ? other.Score(u, v) : missing_value);
  }
  return KendallTau(x, y);
}

double CorrelateCommonScores(const FSimScores& a, const FSimScores& b) {
  std::vector<double> x;
  std::vector<double> y;
  const auto& keys = a.keys();
  const auto& values = a.values();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    if (!b.Contains(u, v)) continue;
    x.push_back(values[i]);
    y.push_back(b.Score(u, v));
  }
  return PearsonCorrelation(x, y);
}

}  // namespace fsim
