// Evaluation metrics used across the experiments: Pearson's correlation
// coefficient (the sensitivity/robustness studies, §5.2), nDCG (the venue
// ranking study, Table 8), F1 (pattern matching Table 6 and alignment
// Table 9), and helpers to correlate two FSim score containers.
#ifndef FSIM_EVAL_METRICS_H_
#define FSIM_EVAL_METRICS_H_

#include <vector>

#include "core/fsim_scores.h"

namespace fsim {

/// Pearson's correlation coefficient of two equal-length samples. Returns 1
/// if either sample has zero variance and the samples are identical up to
/// affine degeneracy (both constant), else 0 for a constant-vs-varying pair.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Normalized discounted cumulative gain at cutoff k for graded relevance
/// values in ranked order (`ranked[i]` = relevance of the item ranked i).
/// `ideal` is the multiset of available relevance grades (it is sorted
/// descending internally).
double NDCG(const std::vector<double>& ranked, std::vector<double> ideal,
            size_t k);

/// F1 = 2PR/(P+R); 0 when both are 0.
double F1Score(double precision, double recall);

/// Pearson correlation between two score containers over the pairs of
/// `reference`: pairs missing from `other` count as score `missing_value`.
/// This is the comparison used by the sensitivity analyses (a run with
/// stronger pruning is correlated against a baseline run).
double CorrelateScores(const FSimScores& reference, const FSimScores& other,
                       double missing_value = 0.0);

/// Pearson correlation restricted to pairs present in both containers.
double CorrelateCommonScores(const FSimScores& a, const FSimScores& b);

/// Kendall's τ-b rank correlation of two equal-length samples, computed in
/// O(n log n) with merge-sort inversion counting (Knight's algorithm) and
/// tie-corrected:
///
///   τ-b = (C - D) / sqrt((n0 - t_x) * (n0 - t_y)),   n0 = n(n-1)/2,
///
/// where C/D are concordant/discordant pair counts and t_x/t_y the tied-pair
/// counts in each sample. Returns 0 when either sample is fully tied.
/// Complements Pearson in the sensitivity analyses: rank agreement is the
/// property the ranking case studies (Tables 7/8) actually rely on.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Kendall's τ-b between two score containers over the pairs of `reference`
/// (missing pairs in `other` count as `missing_value`), mirroring
/// CorrelateScores.
double KendallTauScores(const FSimScores& reference, const FSimScores& other,
                        double missing_value = 0.0);

}  // namespace fsim

#endif  // FSIM_EVAL_METRICS_H_
