#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace fsim {

namespace {

constexpr uint8_t kRecordTypeEdit = 1;
// type + lsn + graph + insert + from + to.
constexpr uint32_t kEditPayloadLen = 1 + 8 + 1 + 1 + 4 + 4;
// len + checksum prefix.
constexpr size_t kFrameHeaderLen = 4 + 8;
// Defensive bound so a corrupt length field cannot drive a huge allocation
// or skip past real records.
constexpr uint32_t kMaxPayloadLen = 1 << 20;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

std::string SegmentPath(const std::string& dir, uint64_t first_lsn) {
  return StrFormat("%s/%s%020llu%s", dir.c_str(), kSegmentPrefix,
                   static_cast<unsigned long long>(first_lsn), kSegmentSuffix);
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

std::string EncodeRecord(const EditRecord& rec) {
  std::string payload;
  payload.reserve(kEditPayloadLen);
  payload.push_back(static_cast<char>(kRecordTypeEdit));
  AppendU64(&payload, rec.lsn);
  payload.push_back(static_cast<char>(rec.graph_index));
  payload.push_back(rec.insert ? 1 : 0);
  AppendU32(&payload, rec.from);
  AppendU32(&payload, rec.to);

  std::string frame;
  frame.reserve(kFrameHeaderLen + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU64(&frame, HashBytes(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

// Decodes one checksum-verified payload. Any malformed field means the bytes
// are not a record this writer produced (torn tail or corruption upstream).
bool DecodePayload(std::string_view payload, EditRecord* out) {
  if (payload.size() != kEditPayloadLen) return false;
  if (static_cast<uint8_t>(payload[0]) != kRecordTypeEdit) return false;
  EditRecord rec;
  std::memcpy(&rec.lsn, payload.data() + 1, 8);
  rec.graph_index = static_cast<uint8_t>(payload[9]);
  if (rec.graph_index != 1 && rec.graph_index != 2) return false;
  const uint8_t insert = static_cast<uint8_t>(payload[10]);
  if (insert > 1) return false;
  rec.insert = insert == 1;
  std::memcpy(&rec.from, payload.data() + 11, 4);
  std::memcpy(&rec.to, payload.data() + 15, 4);
  *out = rec;
  return true;
}

Status WriteAll(int fd, const char* data, size_t len, const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("wal write to %s failed: %s",
                                       path.c_str(), std::strerror(errno)));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// durability: the segment's directory entry must survive a crash too, or a
// durable record could sit in a file no post-crash scan can find.
Status SyncDirectory(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError(StrFormat("cannot open wal directory %s: %s",
                                     dir.c_str(), std::strerror(errno)));
  }
  // durability: a freshly created segment exists after a crash only once
  // its directory entry is synced (rename-less create).
  const int rc = ::fsync(dfd);
  const int saved_errno = errno;
  ::close(dfd);
  if (rc != 0) {
    return Status::IOError(StrFormat("fsync of wal directory %s failed: %s",
                                     dir.c_str(),
                                     std::strerror(saved_errno)));
  }
  return Status::OK();
}

// Segment files of `dir`, (first_lsn, path) sorted ascending. Non-segment
// files are ignored so snapshots and temp files can share the directory.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot list wal directory %s: %s",
                                     dir.c_str(), ec.message().c_str()));
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, kSegmentPrefix) ||
        name.size() <= std::strlen(kSegmentPrefix) +
                           std::strlen(kSegmentSuffix) ||
        name.substr(name.size() - std::strlen(kSegmentSuffix)) !=
            kSegmentSuffix) {
      continue;
    }
    const std::string_view digits =
        std::string_view(name).substr(std::strlen(kSegmentPrefix),
                                      name.size() -
                                          std::strlen(kSegmentPrefix) -
                                          std::strlen(kSegmentSuffix));
    auto lsn = ParseUint64(digits);
    if (!lsn.ok()) continue;  // not one of ours
    segments.emplace_back(*lsn, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string dir,
                                                   uint64_t next_lsn) {
  if (next_lsn == 0) {
    return Status::InvalidArgument("wal lsns start at 1");
  }
  // Immediately owned by unique_ptr; the ctor is private so make_unique
  // cannot be used.
  // fsim-lint: allow(naked-new)
  std::unique_ptr<WalWriter> writer(new WalWriter(std::move(dir), next_lsn));
  std::lock_guard<std::mutex> lock(writer->write_mu_);
  FSIM_RETURN_NOT_OK(writer->OpenSegmentLocked());
  return writer;
}

Status WalWriter::OpenSegmentLocked() {
  path_ = SegmentPath(dir_, next_lsn_.load(std::memory_order_relaxed));
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::IOError(StrFormat("cannot open wal segment %s: %s",
                                     path_.c_str(), std::strerror(errno)));
  }
  // durability: persist the new segment's directory entry before any record
  // lands in it (rename-less create; the dentry is the only pointer).
  return SyncDirectory(dir_);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // durability: best-effort drain on shutdown; acknowledged records were
    // already covered by AppendDurable's group commit.
    ::fsync(fd_);
    ::close(fd_);
  }
}

namespace {

// WAL instrumentation handles, resolved once (obs/metrics.h). "leader"
// group commits performed the fsync; "rider" commits were covered by a
// concurrent leader's sync and skipped their own.
struct WalMetrics {
  obs::Histogram* append_latency;
  obs::Histogram* fsync_latency;
  obs::Counter* commits_leader;
  obs::Counter* commits_rider;

  static const WalMetrics& Get() {
    static const WalMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      WalMetrics m;
      m.append_latency = registry.GetHistogram(
          "fsim_wal_append_seconds",
          "AppendDurable latency: write + group-commit wait, per record",
          obs::Histogram::Unit::kNanoseconds);
      m.fsync_latency = registry.GetHistogram(
          "fsim_wal_fsync_seconds", "WAL segment fsync latency",
          obs::Histogram::Unit::kNanoseconds);
      m.commits_leader = registry.GetCounter(
          "fsim_wal_group_commits_total",
          "Group-commit outcomes: leader performed the fsync, rider was "
          "covered by a concurrent leader",
          "role", "leader");
      m.commits_rider = registry.GetCounter(
          "fsim_wal_group_commits_total",
          "Group-commit outcomes: leader performed the fsync, rider was "
          "covered by a concurrent leader",
          "role", "rider");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Result<uint64_t> WalWriter::AppendDurable(EditRecord rec) {
  FSIM_FAILPOINT("serve.wal.append");
  const WalMetrics& metrics = WalMetrics::Get();
  obs::ScopedLatencyTimer append_timer(metrics.append_latency);
  uint64_t lsn;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    lsn = next_lsn_.fetch_add(1, std::memory_order_acq_rel);
    rec.lsn = lsn;
    const std::string frame = EncodeRecord(rec);
    FSIM_RETURN_NOT_OK(WriteAll(fd_, frame.data(), frame.size(), path_));
    written_lsn_.store(lsn, std::memory_order_release);
  }
  // Group commit: whoever takes sync_mu_ first fsyncs everything written so
  // far; later arrivals whose LSN that sync covered skip theirs entirely.
  if (durable_lsn_.load(std::memory_order_acquire) < lsn) {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (durable_lsn_.load(std::memory_order_acquire) < lsn) {
      // Read before the fsync: only writes already issued are covered.
      const uint64_t cover = written_lsn_.load(std::memory_order_acquire);
      FSIM_FAILPOINT("serve.wal.sync");
      const uint64_t sync_start_ns = obs::MonotonicNanos();
      // durability: this fsync is the acknowledgement barrier — Submit must
      // not report an edit accepted until its record is on stable storage.
      if (::fsync(fd_) != 0) {
        return Status::IOError(StrFormat("wal fsync of %s failed: %s",
                                         path_.c_str(),
                                         std::strerror(errno)));
      }
      metrics.fsync_latency->Record(obs::MonotonicNanos() - sync_start_ns);
      metrics.commits_leader->Inc();
      durable_lsn_.store(cover, std::memory_order_release);
    } else {
      metrics.commits_rider->Inc();
    }
  } else {
    metrics.commits_rider->Inc();
  }
  return lsn;
}

Status WalWriter::Rotate() {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  // durability: drain the old segment before abandoning its fd, so rotation
  // can never regress durable_lsn_.
  if (::fsync(fd_) != 0) {
    return Status::IOError(StrFormat("wal fsync of %s failed: %s",
                                     path_.c_str(), std::strerror(errno)));
  }
  durable_lsn_.store(written_lsn_.load(std::memory_order_acquire),
                     std::memory_order_release);
  ::close(fd_);
  fd_ = -1;
  return OpenSegmentLocked();
}

Result<WalTail> ReadWal(const std::string& dir, bool truncate_torn_tail) {
  WalTail tail;
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec) || ec) return tail;
  FSIM_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  tail.segments = segments.size();

  for (size_t si = 0; si < segments.size(); ++si) {
    const std::string& path = segments[si].second;
    const bool last_segment = si + 1 == segments.size();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IOError(StrFormat("cannot open wal segment %s",
                                       path.c_str()));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      return Status::IOError(StrFormat("read from wal segment %s failed",
                                       path.c_str()));
    }
    const std::string bytes = buffer.str();

    size_t pos = 0;
    bool torn = false;
    while (pos < bytes.size()) {
      uint32_t len = 0;
      uint64_t checksum = 0;
      if (bytes.size() - pos < kFrameHeaderLen) {
        torn = true;
        break;
      }
      std::memcpy(&len, bytes.data() + pos, 4);
      std::memcpy(&checksum, bytes.data() + pos + 4, 8);
      if (len > kMaxPayloadLen || bytes.size() - pos - kFrameHeaderLen < len) {
        torn = true;
        break;
      }
      const std::string_view payload(bytes.data() + pos + kFrameHeaderLen,
                                     len);
      EditRecord rec;
      if (HashBytes(payload.data(), payload.size()) != checksum ||
          !DecodePayload(payload, &rec)) {
        torn = true;
        break;
      }
      const uint64_t expected =
          tail.records.empty() ? segments[si].first
                               : tail.records.back().lsn + 1;
      if (rec.lsn != expected) {
        return Status::IOError(StrFormat(
            "wal segment %s: record lsn %llu, expected %llu (log out of "
            "sequence)",
            path.c_str(), static_cast<unsigned long long>(rec.lsn),
            static_cast<unsigned long long>(expected)));
      }
      tail.records.push_back(rec);
      pos += kFrameHeaderLen + len;
    }

    if (torn) {
      if (!last_segment) {
        return Status::IOError(StrFormat(
            "wal segment %s is corrupt at offset %zu but is not the newest "
            "segment (torn tails can only exist where the writer stopped)",
            path.c_str(), pos));
      }
      tail.torn_bytes = bytes.size() - pos;
      if (truncate_torn_tail) {
        std::error_code resize_ec;
        std::filesystem::resize_file(path, pos, resize_ec);
        if (resize_ec) {
          return Status::IOError(StrFormat(
              "cannot truncate torn wal tail of %s: %s", path.c_str(),
              resize_ec.message().c_str()));
        }
      }
    }
  }

  if (!tail.records.empty()) tail.next_lsn = tail.records.back().lsn + 1;
  return tail;
}

Result<size_t> RemoveObsoleteWalSegments(const std::string& dir,
                                         uint64_t snapshot_lsn) {
  FSIM_ASSIGN_OR_RETURN(auto segments, ListSegments(dir));
  size_t removed = 0;
  // Segment i spans [first_i, first_{i+1}); it is fully covered when every
  // lsn below first_{i+1} is at or below the snapshot. The newest segment is
  // never removed — the writer may hold it open.
  for (size_t si = 0; si + 1 < segments.size(); ++si) {
    if (segments[si + 1].first > snapshot_lsn + 1) break;
    std::error_code ec;
    std::filesystem::remove(segments[si].second, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot remove wal segment %s: %s",
                                       segments[si].second.c_str(),
                                       ec.message().c_str()));
    }
    ++removed;
  }
  return removed;
}

}  // namespace fsim
