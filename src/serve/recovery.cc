#include "serve/recovery.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "core/scores_io.h"
#include "graph/binary_io.h"

namespace fsim {

namespace {

constexpr char kSnapshotMagic[8] = {'F', 'S', 'I', 'M', 'S', 'N', 'P', '1'};
constexpr uint32_t kSnapshotVersion = 1;

constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".fsnap";

std::string SnapshotPath(const std::string& dir, uint64_t lsn) {
  return StrFormat("%s/%s%020llu%s", dir.c_str(), kSnapshotPrefix,
                   static_cast<unsigned long long>(lsn), kSnapshotSuffix);
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendBlob(std::string* out, std::string_view blob) {
  AppendU64(out, blob.size());
  out->append(blob);
}

// Snapshot files, (lsn, path) sorted ascending.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot list durability directory %s: %s",
                                     dir.c_str(), ec.message().c_str()));
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, kSnapshotPrefix) ||
        name.size() <= std::strlen(kSnapshotPrefix) +
                           std::strlen(kSnapshotSuffix) ||
        name.substr(name.size() - std::strlen(kSnapshotSuffix)) !=
            kSnapshotSuffix) {
      continue;
    }
    const std::string_view digits =
        std::string_view(name).substr(std::strlen(kSnapshotPrefix),
                                      name.size() -
                                          std::strlen(kSnapshotPrefix) -
                                          std::strlen(kSnapshotSuffix));
    auto lsn = ParseUint64(digits);
    if (!lsn.ok()) continue;
    snapshots.emplace_back(*lsn, entry.path().string());
  }
  std::sort(snapshots.begin(), snapshots.end());
  return snapshots;
}

Result<LoadedSnapshot> ParseSnapshot(std::string_view bytes, uint64_t lsn) {
  if (bytes.size() < sizeof(kSnapshotMagic) + 8 ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::IOError("not an fsim snapshot (bad magic)");
  }
  const size_t payload_end = bytes.size() - 8;
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + payload_end, 8);
  const uint64_t computed = HashBytes(bytes.data() + sizeof(kSnapshotMagic),
                                      payload_end - sizeof(kSnapshotMagic));
  if (stored_checksum != computed) {
    return Status::IOError("snapshot checksum mismatch (torn or corrupt)");
  }

  size_t pos = sizeof(kSnapshotMagic);
  auto read_u32 = [&](uint32_t* v) {
    if (payload_end - pos < 4) return false;
    std::memcpy(v, bytes.data() + pos, 4);
    pos += 4;
    return true;
  };
  auto read_u64 = [&](uint64_t* v) {
    if (payload_end - pos < 8) return false;
    std::memcpy(v, bytes.data() + pos, 8);
    pos += 8;
    return true;
  };
  auto read_blob = [&](std::string_view* out) {
    uint64_t len;
    if (!read_u64(&len) || payload_end - pos < len) return false;
    *out = bytes.substr(pos, len);
    pos += len;
    return true;
  };

  uint32_t version;
  uint64_t stored_lsn;
  std::string_view g1_bytes, g2_bytes, scores_text;
  if (!read_u32(&version) || version != kSnapshotVersion) {
    return Status::IOError("unsupported snapshot version");
  }
  if (!read_u64(&stored_lsn) || stored_lsn != lsn) {
    return Status::IOError("snapshot lsn does not match its filename");
  }
  if (!read_blob(&g1_bytes) || !read_blob(&g2_bytes) ||
      !read_blob(&scores_text) || pos != payload_end) {
    return Status::IOError("snapshot payload is malformed");
  }

  LoadedSnapshot snap;
  snap.lsn = lsn;
  // Both graphs share one dictionary, as the serving layer loads them.
  FSIM_ASSIGN_OR_RETURN(snap.g1, GraphFromBinary(g1_bytes));
  FSIM_ASSIGN_OR_RETURN(snap.g2, GraphFromBinary(g2_bytes, snap.g1.dict()));
  FSIM_ASSIGN_OR_RETURN(snap.scores, ScoresFromString(scores_text));
  return snap;
}

Status SyncDirectory(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError(StrFormat("cannot open directory %s: %s",
                                     dir.c_str(), std::strerror(errno)));
  }
  // durability: a renamed-in snapshot is only crash-visible once its
  // directory entry is on disk.
  const int rc = ::fsync(dfd);
  const int saved_errno = errno;
  ::close(dfd);
  if (rc != 0) {
    return Status::IOError(StrFormat("fsync of directory %s failed: %s",
                                     dir.c_str(),
                                     std::strerror(saved_errno)));
  }
  return Status::OK();
}

}  // namespace

Status PersistSnapshot(const std::string& dir, uint64_t lsn, const Graph& g1,
                       const Graph& g2, const FSimScores& scores) {
  FSIM_FAILPOINT("serve.snapshot.persist");
  std::string bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(&bytes, kSnapshotVersion);
  AppendU64(&bytes, lsn);
  AppendBlob(&bytes, GraphToBinary(g1));
  AppendBlob(&bytes, GraphToBinary(g2));
  AppendBlob(&bytes, ScoresToString(scores));
  AppendU64(&bytes, HashBytes(bytes.data() + sizeof(kSnapshotMagic),
                              bytes.size() - sizeof(kSnapshotMagic)));

  const std::string final_path = SnapshotPath(dir, lsn);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open %s: %s", tmp_path.c_str(),
                                     std::strerror(errno)));
  }
  const char* data = bytes.data();
  size_t len = bytes.size();
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved_errno = errno;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IOError(StrFormat("write to %s failed: %s",
                                       tmp_path.c_str(),
                                       std::strerror(saved_errno)));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  // durability: the content must be stable before the rename makes the file
  // visible, or a crash could expose a complete-looking but unsynced
  // snapshot whose blocks never hit the platter.
  if (::fsync(fd) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::IOError(StrFormat("fsync of %s failed: %s",
                                     tmp_path.c_str(),
                                     std::strerror(saved_errno)));
  }
  ::close(fd);

  Status rename_gate = Status::OK();
#ifdef FSIM_FAILPOINTS
  rename_gate = failpoint::Hit("serve.snapshot.rename");
#endif
  if (!rename_gate.ok()) {
    ::unlink(tmp_path.c_str());
    return rename_gate;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const int saved_errno = errno;
    ::unlink(tmp_path.c_str());
    return Status::IOError(StrFormat("rename %s -> %s failed: %s",
                                     tmp_path.c_str(), final_path.c_str(),
                                     std::strerror(saved_errno)));
  }
  // durability: the rename itself must be durable before callers treat the
  // snapshot as the new recovery floor and delete WAL segments behind it.
  return SyncDirectory(dir);
}

Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir) {
  FSIM_ASSIGN_OR_RETURN(auto snapshots, ListSnapshots(dir));
  size_t discarded = 0;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::ifstream in(it->second, std::ios::binary);
    if (!in) {
      ++discarded;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      ++discarded;
      continue;
    }
    auto snap = ParseSnapshot(buffer.str(), it->first);
    if (!snap.ok()) {
      ++discarded;
      continue;
    }
    LoadedSnapshot loaded = std::move(snap).ValueOrDie();
    loaded.discarded = discarded;
    return loaded;
  }
  return Status::NotFound(StrFormat(
      "no valid snapshot in %s (%zu corrupt skipped)", dir.c_str(),
      discarded));
}

Result<RecoveredState> RecoverServeState(const std::string& dir, Graph base_g1,
                                         Graph base_g2) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("cannot create durability directory "
                                     "%s: %s",
                                     dir.c_str(), ec.message().c_str()));
  }

  RecoveredState state;
  auto snap = LoadLatestSnapshot(dir);
  if (snap.ok()) {
    LoadedSnapshot loaded = std::move(snap).ValueOrDie();
    state.have_snapshot = true;
    state.snapshot_lsn = loaded.lsn;
    state.g1 = std::move(loaded.g1);
    state.g2 = std::move(loaded.g2);
    state.scores = std::move(loaded.scores);
    state.snapshots_discarded = loaded.discarded;
  } else if (snap.status().IsNotFound()) {
    state.g1 = std::move(base_g1);
    state.g2 = std::move(base_g2);
    // NotFound carries the corrupt-skip count only in its message; recount.
    FSIM_ASSIGN_OR_RETURN(auto all, ListSnapshots(dir));
    state.snapshots_discarded = all.size();
  } else {
    return snap.status();
  }

  FSIM_ASSIGN_OR_RETURN(WalTail wal,
                        ReadWal(dir, /*truncate_torn_tail=*/true));
  state.torn_bytes = wal.torn_bytes;
  state.next_lsn = std::max(wal.next_lsn, state.snapshot_lsn + 1);
  state.tail.reserve(wal.records.size());
  for (const EditRecord& rec : wal.records) {
    if (rec.lsn > state.snapshot_lsn) state.tail.push_back(rec);
  }
  return state;
}

Result<size_t> RemoveObsoleteSnapshots(const std::string& dir, size_t keep) {
  if (keep == 0) keep = 1;  // never delete the newest snapshot
  FSIM_ASSIGN_OR_RETURN(auto snapshots, ListSnapshots(dir));
  size_t removed = 0;
  for (size_t i = 0; i + keep < snapshots.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snapshots[i].second, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot remove snapshot %s: %s",
                                       snapshots[i].second.c_str(),
                                       ec.message().c_str()));
    }
    ++removed;
  }
  return removed;
}

Result<uint64_t> OldestSnapshotLsn(const std::string& dir) {
  FSIM_ASSIGN_OR_RETURN(auto snapshots, ListSnapshots(dir));
  return snapshots.empty() ? uint64_t{0} : snapshots.front().first;
}

}  // namespace fsim
