// Write-ahead log for serving-layer edge edits (serve/refresh.h).
//
// RefreshDriver::Submit appends every accepted edit here *before* the edit
// is acknowledged to the client, so a crash at any later point — queue,
// solve, publish — loses nothing acknowledged: recovery (serve/recovery.h)
// replays the log tail on top of the latest durable snapshot.
//
// On-disk layout: a directory of append-only segment files
//
//   wal-<first-lsn, 20 digits>.log
//
// each holding a sequence of length-prefixed, checksummed records:
//
//   u32  payload length
//   u64  FNV-1a checksum of the payload bytes
//   ...  payload: u8 type(=1)  u64 lsn  u8 graph  u8 insert  u32 from  u32 to
//
// LSNs are assigned by the writer, contiguous and strictly increasing across
// segments. A torn write (crash mid-append) leaves a partial record at the
// tail of the *newest* segment only; ReadWal detects it by length/checksum,
// reports the byte count, and can truncate it away. A bad record anywhere
// else is real corruption and fails the read.
//
// Durability contract: AppendDurable returns only after the record's bytes
// are fsync'd (group commit — concurrent appenders share one fsync), so
// "returned OK" implies "survives kill -9 and power loss".
#ifndef FSIM_SERVE_WAL_H_
#define FSIM_SERVE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace fsim {

/// One durable edge edit. `graph_index` is 1 or 2 (which side of the pair
/// the edit targets), mirroring serve/refresh.h's EditOp.
struct EditRecord {
  uint64_t lsn = 0;
  uint8_t graph_index = 1;
  bool insert = true;
  NodeId from = 0;
  NodeId to = 0;

  bool operator==(const EditRecord&) const = default;
};

/// Appends edit records to segment files with group-commit fsync.
/// Thread-safe: any number of threads may call AppendDurable concurrently.
class WalWriter {
 public:
  /// Opens a fresh segment in `dir` whose first record will carry
  /// `next_lsn`. The directory must exist (recovery creates it).
  static Result<std::unique_ptr<WalWriter>> Open(std::string dir,
                                                 uint64_t next_lsn);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Assigns the next LSN to `rec`, appends it, and returns once the record
  /// is durable (fsync'd). Concurrent callers share fsyncs: whichever caller
  /// reaches the sync first covers everything written before it. On error
  /// the record must be treated as not acknowledged (it may or may not
  /// survive a crash; recovery replays are idempotent either way).
  Result<uint64_t> AppendDurable(EditRecord rec);

  /// Closes the current segment (fsync'd) and starts a new one at the
  /// current next-LSN. Called after a durable snapshot so fully-covered
  /// segments become eligible for RemoveObsoleteWalSegments.
  Status Rotate();

  /// LSN the next AppendDurable will assign.
  uint64_t next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }
  /// Highest LSN known fsync'd.
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  /// Records written to the segment but not yet covered by an fsync (the
  /// group-commit window). 0 whenever the log is quiescent.
  uint64_t pending() const {
    const uint64_t written = written_lsn_.load(std::memory_order_acquire);
    const uint64_t durable = durable_lsn_.load(std::memory_order_acquire);
    return written > durable ? written - durable : 0;
  }
  const std::string& dir() const { return dir_; }

 private:
  WalWriter(std::string dir, uint64_t next_lsn)
      : dir_(std::move(dir)), next_lsn_(next_lsn) {}

  Status OpenSegmentLocked();

  std::string dir_;
  std::string path_;  // current segment
  int fd_ = -1;
  // guards: lsn assignment + the write() into the current segment.
  std::mutex write_mu_;
  // guards: the fsync; taken without write_mu_ held so appends overlap
  // syncs (the group-commit window).
  std::mutex sync_mu_;
  // ordering: next_lsn_ advances under write_mu_; written_lsn_ is released
  // after the write lands and acquired before each fsync so the sync's
  // coverage never overstates what was issued; durable_lsn_ is released
  // only after a successful fsync (the "acknowledged" watermark).
  std::atomic<uint64_t> next_lsn_;
  // ordering: released after the write lands, acquired before each fsync
  // so a sync's coverage never overstates what was issued.
  std::atomic<uint64_t> written_lsn_{0};
  // ordering: released only after a successful fsync (the "acknowledged"
  // watermark readers may trust).
  std::atomic<uint64_t> durable_lsn_{0};
};

/// Everything ReadWal recovered from a directory of segments.
struct WalTail {
  std::vector<EditRecord> records;  // ascending, contiguous LSNs
  /// 1 + the highest LSN seen (1 when the log is empty) — what a fresh
  /// WalWriter should be opened with.
  uint64_t next_lsn = 1;
  /// Bytes of torn tail detected (and truncated, when asked) at the end of
  /// the newest segment.
  uint64_t torn_bytes = 0;
  size_t segments = 0;
};

/// Reads every segment in `dir` in LSN order. A torn record at the tail of
/// the newest segment is dropped (and the file truncated to the valid
/// prefix when `truncate_torn_tail`); a bad record anywhere else fails with
/// IOError. A missing or empty directory yields an empty tail.
Result<WalTail> ReadWal(const std::string& dir, bool truncate_torn_tail);

/// Deletes segments whose records are all covered by a durable snapshot at
/// `snapshot_lsn` (never the newest segment). Returns how many were removed.
Result<size_t> RemoveObsoleteWalSegments(const std::string& dir,
                                         uint64_t snapshot_lsn);

}  // namespace fsim

#endif  // FSIM_SERVE_WAL_H_
