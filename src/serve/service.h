// FSimService — the long-lived serving endpoint tying the pieces of
// src/serve/ together: a SnapshotStore readers acquire from, a QueryEngine
// answering against acquired snapshots, and a RefreshDriver applying a
// background edit stream and republishing. The request surface is a
// line-oriented protocol over plain iostreams (ServeLoop), so the service
// is transport-agnostic — stdin/stdout in `fsim_cli serve`, stringstreams
// in tests, a socket wrapper in a deployment — and fully testable without
// networking. docs/serving.md specifies the protocol.
//
// With ServeOptions::durability configured, Create first runs crash
// recovery (serve/recovery.h) over the durability directory — loading the
// latest valid snapshot, truncating any torn WAL tail, and scheduling the
// replay — and every accepted EDIT is WAL-logged before it is acknowledged.
#ifndef FSIM_SERVE_SERVICE_H_
#define FSIM_SERVE_SERVICE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/fsim_config.h"
#include "graph/graph.h"
#include "serve/query.h"
#include "serve/recovery.h"
#include "serve/refresh.h"
#include "serve/snapshot.h"

namespace fsim {

struct ServeOptions {
  RefreshPolicy policy;
  IncrementalOptions incremental;
  /// Optional scores file (core/scores_io.h). When set, the loaded scores
  /// are published as the first snapshot BEFORE the refresh engine's
  /// fixpoint solve runs, so a warm-started service answers queries
  /// immediately while the solve proceeds in the background.
  std::string warm_scores_path;
  /// WAL + snapshot durability (serve/recovery.h); off while `dir` is
  /// empty. A recovered snapshot's scores are published immediately (like
  /// warm_scores_path, which it then supersedes) and seed the solve.
  DurabilityOptions durability;
  /// True: Init + refresh run on a background thread (production shape).
  /// False: Create solves synchronously and edits apply only on FLUSH —
  /// deterministic, for tests and transcripts.
  bool background_refresh = true;
};

/// One serving instance over a graph pair. Construction wires the store,
/// query engine and refresh driver; ServeLoop (callable from any number of
/// threads, each with its own streams) speaks the request protocol.
class FSimService {
 public:
  /// Largest request line ServeLoop accepts; longer lines are rejected
  /// in-band (`ERR line exceeds ...`) without buffering their content.
  static constexpr size_t kMaxLineBytes = 4096;

  static Result<std::unique_ptr<FSimService>> Create(Graph g1, Graph g2,
                                                     FSimConfig config,
                                                     ServeOptions options);
  ~FSimService();

  /// Reads requests from `in` line by line and writes responses to `out`
  /// until EOF or QUIT. Responses are flushed per request. Errors are
  /// reported in-band (`ERR <message>` lines) — including hostile input
  /// (over-length lines, embedded NUL bytes); the return is the stream
  /// outcome, OK on orderly EOF/QUIT.
  Status ServeLoop(std::istream& in, std::ostream& out);

  SnapshotStore& store() { return store_; }
  const QueryEngine& query_engine() const { return queries_; }
  RefreshDriver& driver() { return *driver_; }

 private:
  FSimService();

  /// Handles one request line; returns false on QUIT.
  bool HandleLine(std::string_view line, std::istream& in, std::ostream& out);
  void HandleBatch(size_t n, double budget_ms, std::istream& in,
                   std::ostream& out);

  SnapshotStore store_;
  // Batch-query fan-out workers (config.num_threads > 1 only); must outlive
  // queries_, which holds a pointer into it.
  std::unique_ptr<ThreadPool> batch_pool_;
  QueryEngine queries_;
  std::unique_ptr<RefreshDriver> driver_;  // holds a pointer to store_
};

}  // namespace fsim

#endif  // FSIM_SERVE_SERVICE_H_
