#include "serve/snapshot.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace fsim {

FSimSnapshot::FSimSnapshot(SharedFSimScores scores, size_t cache_k,
                           SnapshotMeta meta)
    : scores_(std::move(scores)), cache_k_(cache_k), meta_(meta) {
  // meta.build_seconds arrives holding the producer's cost of obtaining
  // the frozen scores (e.g. the engine's score-table copy); the cache
  // build below adds its own share so the published figure is the whole
  // snapshot cost.
  Timer cache_timer;
  const auto& keys = scores_->keys();
  BuildCache(keys);
  meta_.build_seconds += cache_timer.Seconds();
}

void FSimSnapshot::BuildCache(const std::vector<uint64_t>& keys) {
  if (keys.empty() || cache_k_ == 0) return;
  // Keys are u-major sorted, so rows are contiguous; one linear walk finds
  // every row boundary and top-k-selects it in place.
  const NodeId max_u = PairFirst(keys.back());
  cache_offsets_.assign(static_cast<size_t>(max_u) + 2, 0);
  cache_entries_.reserve(
      std::min(keys.size(), (static_cast<size_t>(max_u) + 1) * cache_k_));
  size_t i = 0;
  NodeId next_row = 0;
  while (i < keys.size()) {
    const NodeId u = PairFirst(keys[i]);
    // Rows absent from the pair table get empty [off, off) spans.
    for (; next_row <= u; ++next_row) {
      cache_offsets_[next_row] = static_cast<uint32_t>(cache_entries_.size());
    }
    scores_->TopKInto(u, cache_k_, &cache_entries_);
    while (i < keys.size() && PairFirst(keys[i]) == u) ++i;
  }
  cache_offsets_[static_cast<size_t>(max_u) + 1] =
      static_cast<uint32_t>(cache_entries_.size());
}

std::vector<std::pair<NodeId, double>> FSimSnapshot::TopK(NodeId u,
                                                          size_t k) const {
  auto cached = CachedTopK(u);
  if (k <= cache_k_ || cached.size() < cache_k_) {
    // The cache prefix answers exactly: either k fits in it, or the row is
    // shorter than the cache depth (so the cache holds the whole row).
    auto end = cached.begin() + std::min(k, cached.size());
    return {cached.begin(), end};
  }
  return scores_->TopK(u, k);
}

std::vector<std::pair<NodeId, double>> FSimSnapshot::ThresholdNeighbors(
    NodeId u, double tau) const {
  // If the cache holds the whole row, or its weakest cached entry already
  // falls below tau, the matches are a prefix of the cache — no row scan.
  auto cached = CachedTopK(u);
  if (cached.size() < cache_k_ ||
      (!cached.empty() && cached.back().second < tau)) {
    auto end = std::partition_point(
        cached.begin(), cached.end(),
        [tau](const std::pair<NodeId, double>& e) { return e.second >= tau; });
    return {cached.begin(), end};
  }
  std::vector<std::pair<NodeId, double>> out = scores_->Row(u);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [tau](const std::pair<NodeId, double>& e) {
                             return e.second < tau;
                           }),
            out.end());
  std::sort(out.begin(), out.end(),
            [](const std::pair<NodeId, double>& a,
               const std::pair<NodeId, double>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return out;
}

bool SnapshotStore::Publish(SnapshotPtr snapshot) {
  FSIM_CHECK(snapshot != nullptr) << "Publish of a null snapshot";
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint64_t version = snapshot->meta().version;
  FSIM_CHECK(version <= next_version_.load())
      << "snapshot version was not obtained from NextVersion";
  if (version <= published_version_.load()) return false;  // stale publish
  current_.store(std::move(snapshot));
  published_version_.store(version);
  publish_count_.fetch_add(1);
  if (version_chain_.size() >= kVersionChainCapacity) {
    version_chain_.erase(version_chain_.begin());
  }
  version_chain_.push_back(version);
#ifdef FSIM_DEBUG_CHECKS
  {
    const Status valid = ValidateChainLocked();
    FSIM_CHECK(valid.ok()) << valid.ToString();
  }
#endif
  return true;
}

Status SnapshotStore::ValidateChain() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return ValidateChainLocked();
}

Status SnapshotStore::ValidateChainLocked() const {
  ValidatorCounters::Bump("SnapshotStore::ValidateChain");
  for (size_t k = 1; k < version_chain_.size(); ++k) {
    if (version_chain_[k] <= version_chain_[k - 1]) {
      return Status::Internal(
          "snapshot chain regresses: version " +
          std::to_string(version_chain_[k]) + " published after " +
          std::to_string(version_chain_[k - 1]));
    }
  }
  const uint64_t published = published_version_.load();
  const uint64_t next = next_version_.load();
  if (published > next) {
    return Status::Internal("published version " + std::to_string(published) +
                            " exceeds the ticket counter " +
                            std::to_string(next));
  }
  if (!version_chain_.empty() && version_chain_.back() != published) {
    return Status::Internal(
        "published version " + std::to_string(published) +
        " is not the newest chain entry " +
        std::to_string(version_chain_.back()));
  }
  const SnapshotPtr head = current_.load();
  if (publish_count_.load() > 0) {
    // use_count counts the store's reference plus our local copy; below 2
    // the head is either gone or about to be freed under a reader.
    if (head == nullptr || head.use_count() < 2) {
      return Status::Internal("published head is not alive (refcount < 1)");
    }
    if (head->meta().version != published) {
      return Status::Internal(
          "published head carries version " +
          std::to_string(head->meta().version) + ", store says " +
          std::to_string(published));
    }
  } else if (head != nullptr) {
    return Status::Internal("snapshot present before any publish");
  }
  return Status::OK();
}

}  // namespace fsim
