// Background incremental refresh for the serving layer: a thread-safe edit
// queue feeding an owned IncrementalFSim (core/incremental.h), and a policy
// deciding when the repaired scores are republished as a fresh snapshot.
//
// The driver is the single writer of the serving pipeline. Edits arrive
// through Submit() from any thread (the serve loop, ingestion threads) and
// are applied in drained batches: a burst touching the same edge coalesces
// to its net effect before the O(deg) incremental repair runs, and a
// publish — the snapshot copy plus top-k cache build — happens only when
// the drift policy (edits applied since the last publish, or time behind)
// fires, not per edit. Queries never see intermediate state: readers hold
// the previously published snapshot until the atomic swap.
#ifndef FSIM_SERVE_REFRESH_H_
#define FSIM_SERVE_REFRESH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/fsim_config.h"
#include "core/incremental.h"
#include "graph/graph.h"
#include "serve/snapshot.h"

namespace fsim {

/// One queued graph edit (the dynamic counterpart of graph/edits.h: the
/// same edge-level add/remove ops, applied through IncrementalFSim instead
/// of materializing an edited CSR copy).
struct EditOp {
  int graph_index = 1;  // 1 or 2, as in IncrementalFSim::InsertEdge
  NodeId from = 0;
  NodeId to = 0;
  bool insert = true;  // false: remove
};

/// Unbounded MPSC edit queue: producers push, the refresh driver drains.
class EditQueue {
 public:
  void Push(const EditOp& op);

  /// Appends all pending ops to *out in submission order; returns the count.
  size_t Drain(std::vector<EditOp>* out);

  size_t size() const;

  /// Blocks until the queue is non-empty, Wake() is called, or `timeout`
  /// elapses; returns whether the queue is non-empty.
  bool WaitNonEmpty(std::chrono::milliseconds timeout) const;

  /// Wakes a WaitNonEmpty waiter without pushing (shutdown path).
  void Wake() const { cv_.notify_all(); }

 private:
  mutable std::mutex mu_;               // guards: ops_ (and cv_ waits)
  mutable std::condition_variable cv_;  // ordering: signaled under mu_
  std::vector<EditOp> ops_;
};

/// When the refresh driver republishes.
struct RefreshPolicy {
  /// Publish once this many edits have been applied since the last publish
  /// (the drift bound; 1 republishes after every drained batch).
  size_t max_edits_behind = 32;
  /// Also publish when the current snapshot is at least this old and any
  /// edit has been applied since it (the background loop's timer).
  double max_seconds_behind = 2.0;
  /// Top-k cache depth of published snapshots (FSimSnapshot cache_k).
  size_t topk_cache_k = 16;
  /// Background loop poll interval while idle.
  double poll_seconds = 0.05;
};

/// Owns the incremental engine and publishes snapshots into a SnapshotStore.
///
/// Lifecycle: construction is cheap and only captures the inputs; Init()
/// runs the expensive initial fixpoint solve and publishes the first
/// computed snapshot. Start() runs Init (if still needed) plus the
/// drain/apply/publish loop on a background thread, so a warm-started
/// service answers queries from its loaded snapshot while the solve is
/// still running. All apply/publish paths are serialized internally;
/// Submit() is safe from any thread at any time (pre-Init edits queue up).
class RefreshDriver {
 public:
  struct Stats {
    uint64_t edits_submitted = 0;
    uint64_t edits_applied = 0;
    /// Submitted ops that coalesced away (net no-ops: inserting a present
    /// edge, removing an absent one, or burst pairs cancelling out).
    uint64_t edits_coalesced = 0;
    /// Edits rejected by the incremental engine (e.g. endpoint out of
    /// range); the engine state is unchanged by a failed edit.
    uint64_t edits_failed = 0;
    uint64_t publishes = 0;
    double last_publish_seconds = 0.0;  // snapshot build cost
    double total_apply_seconds = 0.0;   // incremental repair time
  };

  RefreshDriver(Graph g1, Graph g2, FSimConfig config,
                IncrementalOptions inc_options, RefreshPolicy policy,
                SnapshotStore* store);
  ~RefreshDriver();

  RefreshDriver(const RefreshDriver&) = delete;
  RefreshDriver& operator=(const RefreshDriver&) = delete;

  /// Runs the initial fixpoint solve and publishes the first computed
  /// snapshot. Idempotent; returns the recorded status on repeat calls.
  Status Init();

  /// True once Init succeeded (edits can be applied).
  bool ready() const;

  /// OK before/after a successful Init; the solve error if Init failed.
  Status init_status() const;

  /// Enqueues an edit (thread-safe; never blocks on the engine).
  void Submit(const EditOp& op);

  size_t pending_edits() const { return queue_.size(); }

  /// Drains and applies all queued edits, then publishes if the policy
  /// fires or `force_publish` is set (force publishes only when the
  /// current snapshot is actually behind). Returns the number of edits
  /// applied. Requires ready().
  Result<size_t> DrainApply(bool force_publish);

  /// Blocks until Init has finished (when Start() runs it in the
  /// background), then drains, applies and force-publishes. The
  /// synchronous "make the snapshot current" call behind the protocol's
  /// FLUSH.
  Status Flush();

  /// Starts the background thread: Init (if needed), then the
  /// drain/apply/publish loop until Stop().
  void Start();

  /// Stops the background thread, draining and publishing pending edits
  /// first. Safe to call repeatedly; the destructor calls it.
  void Stop();

  Stats stats() const;

  const RefreshPolicy& policy() const { return policy_; }

  /// Immutable CSR copies of the engine's current graphs (verification in
  /// tests/benches). Requires ready().
  Graph MaterializeG1() const;
  Graph MaterializeG2() const;

 private:
  /// Applies one drained batch after coalescing; caller holds apply_mu_.
  size_t ApplyBatchLocked(const std::vector<EditOp>& batch);
  /// Builds and publishes a snapshot of the current scores; caller holds
  /// apply_mu_.
  void PublishLocked();
  void RunLoop();

  // Immutable after construction.
  Graph g1_;
  Graph g2_;
  FSimConfig config_;
  IncrementalOptions inc_options_;
  RefreshPolicy policy_;
  SnapshotStore* store_;

  EditQueue queue_;

  // guards: inc_, stats_, edits_since_publish_, last_publish_time_ —
  // serializes Init / apply / publish (the single-writer side).
  mutable std::mutex apply_mu_;
  std::unique_ptr<IncrementalFSim> inc_;
  Stats stats_;
  size_t edits_since_publish_ = 0;
  std::chrono::steady_clock::time_point last_publish_time_;

  // Init rendezvous: Flush (and ready checks) may run while Start()'s
  // thread is still solving.
  mutable std::mutex init_mu_;               // guards: init_done_, init_status_
  mutable std::condition_variable init_cv_;  // ordering: signaled under init_mu_
  bool init_done_ = false;
  Status init_status_;

  std::thread thread_;
  std::atomic<bool> stop_{false};          // ordering: relaxed shutdown flag
  std::atomic<uint64_t> submitted_{0};     // ordering: relaxed telemetry

  std::vector<EditOp> drain_scratch_;
  std::vector<EditOp> batch_scratch_;
};

}  // namespace fsim

#endif  // FSIM_SERVE_REFRESH_H_
