// Background incremental refresh for the serving layer: a thread-safe edit
// queue feeding an owned IncrementalFSim (core/incremental.h), and a policy
// deciding when the repaired scores are republished as a fresh snapshot.
//
// The driver is the single writer of the serving pipeline. Edits arrive
// through Submit() from any thread (the serve loop, ingestion threads) and
// are applied in drained batches: a burst touching the same edge coalesces
// to its net effect before the O(deg) incremental repair runs, and a
// publish — the snapshot copy plus top-k cache build — happens only when
// the drift policy (edits applied since the last publish, or time behind)
// fires, not per edit. Queries never see intermediate state: readers hold
// the previously published snapshot until the atomic swap.
//
// Fault tolerance (this layer's robustness contract, see docs/serving.md):
//  - Durability: with EnableDurability attached, Submit appends each edit
//    to a WAL (serve/wal.h) and returns only once the record is fsync'd;
//    periodic durable snapshots (serve/recovery.h) bound replay length.
//    A crash at ANY point after Submit returned OK loses nothing.
//  - Overload: the edit queue can be bounded (RefreshPolicy::queue_capacity);
//    a full queue coalesces same-edge submissions last-op-wins and sheds the
//    rest with ResourceExhausted, counted in Stats::edits_shed.
//  - Degradation: Init failures are retried with exponential backoff by the
//    background loop's watchdog instead of killing refresh forever; queries
//    keep answering from the last published snapshot, with staleness
//    (edits/seconds behind) visible in Stats.
//  - Deadlines: Flush and Stop accept budgets and return DeadlineExceeded
//    instead of blocking indefinitely behind a stalled solve.
#ifndef FSIM_SERVE_REFRESH_H_
#define FSIM_SERVE_REFRESH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/fsim_config.h"
#include "core/incremental.h"
#include "graph/graph.h"
#include "serve/recovery.h"
#include "serve/snapshot.h"
#include "serve/wal.h"

namespace fsim {

/// One queued graph edit (the dynamic counterpart of graph/edits.h: the
/// same edge-level add/remove ops, applied through IncrementalFSim instead
/// of materializing an edited CSR copy).
struct EditOp {
  int graph_index = 1;  // 1 or 2, as in IncrementalFSim::InsertEdge
  NodeId from = 0;
  NodeId to = 0;
  bool insert = true;  // false: remove
  /// WAL sequence number once durably logged (0 when durability is off).
  uint64_t lsn = 0;
  /// obs::MonotonicNanos() at Submit entry (0 for replayed/synthetic ops)
  /// — feeds the queue-wait histogram when the edit is drained for apply.
  uint64_t submit_ns = 0;
};

/// MPSC edit queue with optional bounding: producers admit/commit, the
/// refresh driver drains. With a capacity, a full queue still accepts an
/// edit that coalesces last-op-wins onto a queued edit of the same edge;
/// everything else is shed with ResourceExhausted.
///
/// The two-phase Admit/Commit split exists for WAL ordering: the driver
/// reserves admission BEFORE the durable append, so a shed edit never
/// leaves a ghost record in the log, and a failed append cancels the
/// reservation without touching the queue.
class EditQueue {
 public:
  explicit EditQueue(size_t capacity = 0) : capacity_(capacity) {}

  /// Reserves one admission slot. ResourceExhausted when the queue is full
  /// and the edit cannot coalesce onto a queued one.
  Status Admit(const EditOp& op);

  /// Consumes a reservation: coalesces onto the queued edit of the same
  /// edge (last-op-wins) or appends. Returns whether it coalesced.
  bool CommitAdmitted(const EditOp& op);

  /// Releases a reservation without enqueueing (WAL append failed).
  void CancelAdmitted();

  /// Admit + Commit in one step, for producers without a durability gap.
  /// Sets *coalesced when non-null.
  Status TryPush(const EditOp& op, bool* coalesced = nullptr);

  /// Appends all pending ops to *out in submission order; returns the count.
  size_t Drain(std::vector<EditOp>* out);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Blocks until the queue is non-empty, Wake() is called, or `timeout`
  /// elapses; returns whether the queue is non-empty.
  bool WaitNonEmpty(std::chrono::milliseconds timeout) const;

  /// Wakes a WaitNonEmpty waiter without pushing (shutdown path).
  void Wake() const { cv_.notify_all(); }

 private:
  /// Commit body; the caller holds mu_. Returns whether it coalesced.
  bool CommitLocked(const EditOp& op);

  const size_t capacity_;  // 0 = unbounded
  mutable std::mutex mu_;               // guards: ops_, index_, reserved_
  mutable std::condition_variable cv_;  // ordering: signaled under mu_
  std::vector<EditOp> ops_;
  // PairKey(from, to) -> position in ops_, per graph side — the coalescing
  // index. Cleared on Drain.
  std::unordered_map<uint64_t, size_t> index_[2];
  // Admissions reserved but not yet committed/cancelled. Counted against
  // capacity so concurrent submitters cannot overshoot; an admit that
  // counted on coalescing may still append if a drain ran in between, so
  // occupancy can transiently exceed capacity by the in-flight submit
  // count — bounded and harmless.
  size_t reserved_ = 0;
};

/// When the refresh driver republishes, sheds and retries.
struct RefreshPolicy {
  /// Publish once this many edits have been applied since the last publish
  /// (the drift bound; 1 republishes after every drained batch).
  size_t max_edits_behind = 32;
  /// Also publish when the current snapshot is at least this old and any
  /// edit has been applied since it (the background loop's timer).
  double max_seconds_behind = 2.0;
  /// Top-k cache depth of published snapshots (FSimSnapshot cache_k).
  size_t topk_cache_k = 16;
  /// Background loop poll interval while idle.
  double poll_seconds = 0.05;
  /// Edit queue bound; 0 = unbounded (see EditQueue).
  size_t queue_capacity = 0;
  /// Default Flush() budget; 0 = wait indefinitely (FlushWithin overrides
  /// per call).
  double flush_timeout_seconds = 0.0;
  /// Watchdog backoff after a failed Init solve or refresh round, doubling
  /// up to the max. Queries keep serving the last snapshot throughout.
  double retry_backoff_seconds = 0.05;
  double retry_backoff_max_seconds = 2.0;
};

/// Owns the incremental engine and publishes snapshots into a SnapshotStore.
///
/// Lifecycle: construction is cheap and only captures the inputs; Init()
/// runs the expensive initial fixpoint solve and publishes the first
/// computed snapshot. Start() runs Init (if still needed) plus the
/// drain/apply/publish loop on a background thread, so a warm-started
/// service answers queries from its loaded snapshot while the solve is
/// still running. All apply/publish paths are serialized internally;
/// Submit() is safe from any thread at any time (pre-Init edits queue up).
class RefreshDriver {
 public:
  struct Stats {
    uint64_t edits_submitted = 0;
    uint64_t edits_applied = 0;
    /// Submitted ops that coalesced away (net no-ops: inserting a present
    /// edge, removing an absent one, or burst pairs cancelling out).
    uint64_t edits_coalesced = 0;
    /// Edits rejected by the incremental engine (e.g. endpoint out of
    /// range); the engine state is unchanged by a failed edit.
    uint64_t edits_failed = 0;
    /// Edits shed by the bounded queue (ResourceExhausted from Submit).
    uint64_t edits_shed = 0;
    /// WAL tail records re-applied during Init (crash recovery).
    uint64_t edits_replayed = 0;
    /// WAL appends that failed (the edit was neither acknowledged nor
    /// queued).
    uint64_t wal_failures = 0;
    uint64_t publishes = 0;
    /// Durable snapshots written / persist attempts that failed (the WAL
    /// still covers everything, so a failed persist only lengthens replay).
    uint64_t snapshot_persists = 0;
    uint64_t snapshot_persist_failures = 0;
    /// Init attempts retried by the background watchdog.
    uint64_t init_retries = 0;
    /// Drain/apply rounds that failed in the background loop (backoff
    /// applied, edits retained in the queue).
    uint64_t refresh_failures = 0;
    /// Highest WAL LSN applied to the engine / covered by a durable
    /// snapshot / fsync'd in the log (all 0 with durability off).
    uint64_t applied_lsn = 0;
    uint64_t persisted_lsn = 0;
    uint64_t durable_lsn = 0;
    /// Staleness of the published snapshot: edits applied to the engine
    /// since the last publish, and its age in seconds.
    uint64_t edits_behind = 0;
    double seconds_behind = 0.0;
    /// WAL records written but not yet fsync'd (the group-commit window;
    /// 0 with durability off or a quiescent log).
    uint64_t wal_pending = 0;
    /// Age of the published snapshot in seconds (0 before the first
    /// publish). Unlike seconds_behind this is lock-free to read and is
    /// also exported as the fsim_publish_age_seconds gauge.
    double publish_age_seconds = 0.0;
    double last_publish_seconds = 0.0;  // snapshot build cost
    double total_apply_seconds = 0.0;   // incremental repair time
    double total_persist_seconds = 0.0; // durable snapshot write time
  };

  RefreshDriver(Graph g1, Graph g2, FSimConfig config,
                IncrementalOptions inc_options, RefreshPolicy policy,
                SnapshotStore* store);
  ~RefreshDriver();

  RefreshDriver(const RefreshDriver&) = delete;
  RefreshDriver& operator=(const RefreshDriver&) = delete;

  /// Attaches WAL + snapshot durability. Must be called before Init/Start/
  /// Submit. `recovered` comes from RecoverServeState over the same
  /// directory; its scores seed the initial solve, its tail is replayed
  /// (without re-logging) during Init, and the WAL writer resumes at its
  /// next_lsn. The driver must have been constructed with the recovered
  /// graphs.
  Status EnableDurability(DurabilityOptions options, RecoveredState recovered);

  /// Runs the initial fixpoint solve (warm-seeded under durability),
  /// replays any recovered WAL tail, and publishes the first computed
  /// snapshot. Idempotent once successful; a failed attempt may be retried
  /// (the background loop's watchdog does, with backoff).
  Status Init();

  /// True once Init succeeded (edits can be applied).
  bool ready() const;

  /// OK before/after a successful Init; the most recent solve error while
  /// Init keeps failing.
  Status init_status() const;

  /// Durably logs (when durability is attached) and enqueues an edit.
  /// ResourceExhausted when the bounded queue sheds it; IOError when the
  /// WAL append fails. In both error cases the edit is NOT acknowledged:
  /// it is neither queued nor recoverable, and the caller must report it
  /// rejected. InvalidArgument for a graph_index outside {1, 2}.
  Status Submit(const EditOp& op);

  size_t pending_edits() const { return queue_.size(); }

  /// Drains and applies all queued edits, then publishes if the policy
  /// fires or `force_publish` is set (force publishes only when the
  /// current snapshot is actually behind). Returns the number of edits
  /// applied. Requires ready().
  Result<size_t> DrainApply(bool force_publish);

  /// Blocks until Init has finished (when Start() runs it in the
  /// background), then drains, applies and force-publishes. The
  /// synchronous "make the snapshot current" call behind the protocol's
  /// FLUSH. Bounded by RefreshPolicy::flush_timeout_seconds.
  Status Flush();

  /// Flush with an explicit budget (0 = wait indefinitely). Returns
  /// DeadlineExceeded when Init or the apply lock cannot be reached in
  /// time — the service stays up, answering from the last snapshot.
  Status FlushWithin(std::chrono::milliseconds timeout);

  /// Starts the background thread: Init (retried with backoff on failure),
  /// then the drain/apply/publish loop until Stop().
  void Start();

  /// Stops the background thread, draining and publishing pending edits
  /// first. With a nonzero timeout, returns DeadlineExceeded if the loop
  /// is still draining when it expires (the thread keeps running; call
  /// again — the destructor always waits it out). Safe to call repeatedly.
  Status Stop(std::chrono::milliseconds timeout = std::chrono::milliseconds(0));

  Stats stats() const;

  const RefreshPolicy& policy() const { return policy_; }

  /// True when EnableDurability attached a WAL.
  bool durable() const { return wal_ != nullptr; }

  /// Immutable CSR copies of the engine's current graphs (verification in
  /// tests/benches). Requires ready().
  Graph MaterializeG1() const;
  Graph MaterializeG2() const;

 private:
  /// Init body: solve (warm-seeded), replay, first publish, first durable
  /// snapshot; caller holds apply_mu_.
  Status InitLocked();
  /// DrainApply body; caller holds apply_mu_ and Init must have succeeded.
  Result<size_t> DrainApplyLocked(bool force_publish);
  /// Applies one drained batch after coalescing; caller holds apply_mu_.
  size_t ApplyBatchLocked(const std::vector<EditOp>& batch);
  /// Builds and publishes a snapshot of the current scores; caller holds
  /// apply_mu_.
  void PublishLocked();
  /// Writes a durable snapshot at applied_lsn_, rotates the WAL and trims
  /// obsolete files; caller holds apply_mu_ and durability is attached.
  Status PersistSnapshotLocked();
  void RunLoop();

  // Immutable after construction.
  Graph g1_;
  Graph g2_;
  FSimConfig config_;
  IncrementalOptions inc_options_;
  RefreshPolicy policy_;
  SnapshotStore* store_;

  EditQueue queue_;

  // Durability attachments (set once by EnableDurability, before Init).
  DurabilityOptions durability_;
  std::unique_ptr<WalWriter> wal_;
  std::optional<FSimScores> warm_seed_;
  std::vector<EditOp> replay_tail_;
  uint64_t recovered_lsn_ = 0;  // snapshot LSN recovery started from

  // guards: inc_, stats_, edits_since_publish_, applied_lsn_,
  // persisted_lsn_, edits_since_snapshot_, last_publish_time_ — serializes
  // Init / apply / publish / persist (the single-writer side). Timed so
  // FlushWithin can give up instead of blocking behind a stalled solve.
  mutable std::timed_mutex apply_mu_;
  std::unique_ptr<IncrementalFSim> inc_;
  Stats stats_;
  size_t edits_since_publish_ = 0;
  uint64_t edits_since_snapshot_ = 0;
  uint64_t applied_lsn_ = 0;
  uint64_t persisted_lsn_ = 0;
  std::chrono::steady_clock::time_point last_publish_time_;

  // Init rendezvous: Flush (and ready checks) may run while Start()'s
  // thread is still solving. init_done_ is set ONLY on success — a failed
  // attempt records init_status_ and stays retryable.
  mutable std::mutex init_mu_;               // guards: init_done_, init_status_
  mutable std::condition_variable init_cv_;  // ordering: signaled under init_mu_
  bool init_done_ = false;
  Status init_status_;

  // Loop-exit rendezvous for Stop deadlines (std::thread has no timed
  // join; the loop signals here on its way out).
  mutable std::mutex loop_mu_;               // guards: loop_done_
  mutable std::condition_variable loop_cv_;  // ordering: signaled under loop_mu_
  bool loop_done_ = true;

  std::thread thread_;
  std::atomic<bool> stop_{false};            // ordering: relaxed shutdown flag
  // obs::MonotonicNanos() of the last publish (0 before the first). Kept
  // outside apply_mu_ so the publish-age callback gauge and stats() can
  // read it without contending with a running solve.
  std::atomic<uint64_t> last_publish_ns_{0};  // ordering: relaxed telemetry
  std::atomic<uint64_t> submitted_{0};       // ordering: relaxed telemetry
  std::atomic<uint64_t> shed_{0};            // ordering: relaxed telemetry
  std::atomic<uint64_t> queue_coalesced_{0}; // ordering: relaxed telemetry
  std::atomic<uint64_t> wal_failures_{0};    // ordering: relaxed telemetry
  std::atomic<uint64_t> init_retries_{0};    // ordering: relaxed telemetry
  std::atomic<uint64_t> refresh_failures_{0};// ordering: relaxed telemetry

  std::vector<EditOp> drain_scratch_;
  std::vector<EditOp> batch_scratch_;
};

}  // namespace fsim

#endif  // FSIM_SERVE_REFRESH_H_
