#include "serve/service.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <vector>

#include "common/string_util.h"
#include "core/scores_io.h"
#include "core/simd/dispatch.h"
#include "obs/metrics.h"

namespace fsim {

namespace {

/// Largest accepted BATCH size (memory safety valve for the request
/// parser; each sub-query still answers against one shared snapshot).
constexpr size_t kMaxBatch = 100'000;

bool ParseU32(std::string_view token, uint32_t* out) {
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s.empty() ||
      value > 0xFFFFFFFFUL) {
    return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ParseDouble(std::string_view token, double* out) {
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || s.empty()) return false;
  *out = value;
  return true;
}

/// Parses a PAIR/TOPK/THRESH request; writes an error message otherwise.
bool ParseQuery(const std::vector<std::string_view>& tokens, Query* query,
                std::string* error) {
  if (tokens.empty()) {
    *error = "empty request";
    return false;
  }
  const std::string_view verb = tokens[0];
  if (verb == "PAIR") {
    if (tokens.size() != 3 || !ParseU32(tokens[1], &query->u) ||
        !ParseU32(tokens[2], &query->v)) {
      *error = "usage: PAIR <u> <v>";
      return false;
    }
    query->kind = Query::Kind::kPair;
    return true;
  }
  if (verb == "TOPK") {
    uint32_t k = 0;
    double budget_ms = 0.0;
    if (tokens.size() < 3 || tokens.size() > 4 ||
        !ParseU32(tokens[1], &query->u) || !ParseU32(tokens[2], &k) ||
        (tokens.size() == 4 &&
         (!ParseDouble(tokens[3], &budget_ms) || budget_ms < 0.0))) {
      *error = "usage: TOPK <u> <k> [budget_ms]";
      return false;
    }
    query->kind = Query::Kind::kTopK;
    query->k = k;
    query->budget_ms = budget_ms;
    return true;
  }
  if (verb == "THRESH") {
    double budget_ms = 0.0;
    if (tokens.size() < 3 || tokens.size() > 4 ||
        !ParseU32(tokens[1], &query->u) ||
        !ParseDouble(tokens[2], &query->tau) ||
        (tokens.size() == 4 &&
         (!ParseDouble(tokens[3], &budget_ms) || budget_ms < 0.0))) {
      *error = "usage: THRESH <u> <tau> [budget_ms]";
      return false;
    }
    query->kind = Query::Kind::kThreshold;
    query->budget_ms = budget_ms;
    return true;
  }
  *error = StrFormat("unknown request '%.*s'", static_cast<int>(verb.size()),
                     verb.data());
  return false;
}

void PrintResult(const QueryResult& result, std::ostream& out) {
  switch (result.kind) {
    case Query::Kind::kPair:
      out << StrFormat("SCORE %.6f v%llu\n", result.score,
                       static_cast<unsigned long long>(result.version));
      break;
    case Query::Kind::kTopK:
    case Query::Kind::kThreshold:
      out << StrFormat("%s %zu v%llu%s\n",
                       result.kind == Query::Kind::kTopK ? "TOPK" : "THRESH",
                       result.entries.size(),
                       static_cast<unsigned long long>(result.version),
                       result.degraded ? " degraded" : "");
      for (const auto& [v, score] : result.entries) {
        out << StrFormat("%u %.6f\n", v, score);
      }
      break;
  }
}

/// Bounded line reader: reads up to `max_bytes` of one line through a
/// fixed stack buffer, so a hostile arbitrarily-long line never grows a
/// string to match. On overflow the stored prefix is discarded but the
/// whole line is still consumed, and *overflowed reports it. Returns false
/// at end of stream.
bool ReadLineCapped(std::istream& in, std::string* line, size_t max_bytes,
                    bool* overflowed) {
  line->clear();
  *overflowed = false;
  char buf[1024];
  while (true) {
    in.getline(buf, sizeof(buf));
    const std::streamsize got = in.gcount();
    if (in.bad()) return false;
    const bool stopped_by_capacity =
        in.fail() && !in.eof() &&
        got == static_cast<std::streamsize>(sizeof(buf)) - 1;
    if (in.fail() && !stopped_by_capacity) {
      // End of stream (or a zero-length final read): deliver whatever a
      // previous iteration accumulated.
      return !line->empty() || *overflowed;
    }
    // gcount includes the consumed-but-discarded delimiter when one was hit.
    size_t stored = static_cast<size_t>(got);
    if (!in.fail() && !in.eof() && stored > 0) stored -= 1;
    if (!*overflowed) {
      if (line->size() + stored > max_bytes) {
        *overflowed = true;
        line->clear();  // do not hold hostile content
      } else {
        line->append(buf, stored);
      }
    }
    if (!in.fail()) return true;  // delimiter reached
    if (in.eof()) return true;    // final line without newline
    in.clear();  // capacity stop: keep consuming the same line
  }
}

}  // namespace

FSimService::FSimService() : queries_(&store_) {}

FSimService::~FSimService() = default;

Result<std::unique_ptr<FSimService>> FSimService::Create(Graph g1, Graph g2,
                                                         FSimConfig config,
                                                         ServeOptions options) {
  // The constructor is private, so make_unique cannot reach it; this IS the
  // factory.
  // fsim-lint: allow(naked-new)
  std::unique_ptr<FSimService> service(new FSimService());
  if (config.num_threads > 1) {
    service->batch_pool_ = std::make_unique<ThreadPool>(config.num_threads);
    service->queries_ =
        QueryEngine(&service->store_, service->batch_pool_.get());
  }

  if (!options.durability.dir.empty()) {
    // Crash recovery first: the recovered snapshot (if any) becomes both
    // the immediately-served warm snapshot and the solve's warm seed; the
    // WAL tail replays inside the driver's Init.
    FSIM_ASSIGN_OR_RETURN(RecoveredState recovered,
                          RecoverServeState(options.durability.dir,
                                            std::move(g1), std::move(g2)));
    if (recovered.scores.has_value()) {
      FSimScores warm = *recovered.scores;  // the driver keeps the original
      SnapshotMeta meta;
      meta.version = service->store_.NextVersion();
      meta.warm_start = true;
      service->store_.Publish(std::make_shared<const FSimSnapshot>(
          FreezeScores(std::move(warm)), options.policy.topk_cache_k, meta));
    }
    service->driver_ = std::make_unique<RefreshDriver>(
        std::move(recovered.g1), std::move(recovered.g2), std::move(config),
        options.incremental, options.policy, &service->store_);
    FSIM_RETURN_NOT_OK(service->driver_->EnableDurability(
        options.durability, std::move(recovered)));
  } else {
    if (!options.warm_scores_path.empty()) {
      FSIM_ASSIGN_OR_RETURN(FSimScores scores,
                            LoadScoresFromFile(options.warm_scores_path));
      SnapshotMeta meta;
      meta.version = service->store_.NextVersion();
      meta.warm_start = true;
      service->store_.Publish(std::make_shared<const FSimSnapshot>(
          FreezeScores(std::move(scores)), options.policy.topk_cache_k,
          meta));
    }
    service->driver_ = std::make_unique<RefreshDriver>(
        std::move(g1), std::move(g2), std::move(config), options.incremental,
        options.policy, &service->store_);
  }

  if (options.background_refresh) {
    service->driver_->Start();
  } else {
    FSIM_RETURN_NOT_OK(service->driver_->Init());
  }
  return service;
}

Status FSimService::ServeLoop(std::istream& in, std::ostream& out) {
  std::string line;
  bool overflowed = false;
  while (ReadLineCapped(in, &line, kMaxLineBytes, &overflowed)) {
    bool keep_going = true;
    if (overflowed) {
      out << StrFormat("ERR line exceeds %zu bytes\n", kMaxLineBytes);
    } else if (line.find('\0') != std::string::npos) {
      out << "ERR embedded NUL byte in request\n";
    } else {
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      keep_going = HandleLine(trimmed, in, out);
    }
    out.flush();
    if (!out) {
      // The peer is gone (closed pipe/socket); stop reading requests.
      return Status::IOError("response stream failed");
    }
    if (!keep_going) break;
  }
  return Status::OK();
}

bool FSimService::HandleLine(std::string_view line, std::istream& in,
                             std::ostream& out) {
  const std::vector<std::string_view> tokens = SplitWhitespace(line);
  const std::string_view verb = tokens.empty() ? std::string_view() : tokens[0];

  if (verb == "QUIT") {
    out << "BYE\n";
    return false;
  }
  if (verb == "PAIR" || verb == "TOPK" || verb == "THRESH") {
    Query query;
    std::string error;
    if (!ParseQuery(tokens, &query, &error)) {
      out << "ERR " << error << "\n";
      return true;
    }
    auto result = queries_.Run(query);
    if (!result.ok()) {
      out << "ERR " << result.status().message() << "\n";
      return true;
    }
    PrintResult(*result, out);
    return true;
  }
  if (verb == "BATCH") {
    uint32_t n = 0;
    double budget_ms = 0.0;
    if (tokens.size() < 2 || tokens.size() > 3 || !ParseU32(tokens[1], &n) ||
        n > kMaxBatch ||
        (tokens.size() == 3 &&
         (!ParseDouble(tokens[2], &budget_ms) || budget_ms < 0.0))) {
      out << StrFormat("ERR usage: BATCH <n> [budget_ms] (n <= %zu)\n",
                       kMaxBatch);
      return true;
    }
    HandleBatch(n, budget_ms, in, out);
    return true;
  }
  if (verb == "EDIT") {
    EditOp op;
    uint32_t graph_index = 0;
    const bool insert = tokens.size() == 5 && tokens[1] == "INSERT";
    const bool remove = tokens.size() == 5 && tokens[1] == "REMOVE";
    if (!(insert || remove) || !ParseU32(tokens[2], &graph_index) ||
        (graph_index != 1 && graph_index != 2) ||
        !ParseU32(tokens[3], &op.from) || !ParseU32(tokens[4], &op.to)) {
      out << "ERR usage: EDIT INSERT|REMOVE <graph 1|2> <from> <to>\n";
      return true;
    }
    op.graph_index = static_cast<int>(graph_index);
    op.insert = insert;
    const Status submitted = driver_->Submit(op);
    if (submitted.IsResourceExhausted()) {
      out << "ERR shed: " << submitted.message() << "\n";
    } else if (!submitted.ok()) {
      out << "ERR " << submitted.message() << "\n";
    } else if (driver_->durable()) {
      out << "OK logged\n";
    } else {
      out << "OK queued\n";
    }
    return true;
  }
  if (verb == "FLUSH") {
    Status status = driver_->Flush();
    if (!status.ok()) {
      out << "ERR " << status.message() << "\n";
    } else {
      out << StrFormat("OK version %llu\n",
                       static_cast<unsigned long long>(store_.version()));
    }
    return true;
  }
  if (verb == "STATS") {
    // `STATS` stays one deterministic line (golden-transcript pinned);
    // `STATS FULL` appends timing-dependent histogram quantile lines,
    // terminated by END.
    const bool full = tokens.size() == 2 && tokens[1] == "FULL";
    if (tokens.size() > 1 && !full) {
      out << "ERR usage: STATS [FULL]\n";
      return true;
    }
    const SnapshotPtr snapshot = store_.Acquire();
    const RefreshDriver::Stats stats = driver_->stats();
    out << StrFormat(
        "STATS version=%llu pairs=%zu pending=%zu capacity=%zu "
        "applied=%llu coalesced=%llu failed=%llu shed=%llu replayed=%llu "
        "publishes=%llu persists=%llu wal_durable=%llu wal_applied=%llu "
        "wal_pending=%llu stale_edits=%llu stale_s=%llu publish_age_s=%llu "
        "ready=%s converged=%s warm=%s simd=%s\n",
        static_cast<unsigned long long>(store_.version()),
        snapshot ? snapshot->scores().NumPairs() : 0,
        driver_->pending_edits(), driver_->policy().queue_capacity,
        static_cast<unsigned long long>(stats.edits_applied),
        static_cast<unsigned long long>(stats.edits_coalesced),
        static_cast<unsigned long long>(stats.edits_failed),
        static_cast<unsigned long long>(stats.edits_shed),
        static_cast<unsigned long long>(stats.edits_replayed),
        static_cast<unsigned long long>(stats.publishes),
        static_cast<unsigned long long>(stats.snapshot_persists),
        static_cast<unsigned long long>(stats.durable_lsn),
        static_cast<unsigned long long>(stats.applied_lsn),
        static_cast<unsigned long long>(stats.wal_pending),
        static_cast<unsigned long long>(stats.edits_behind),
        static_cast<unsigned long long>(
            stats.seconds_behind < 0.0 ? 0.0 : stats.seconds_behind),
        static_cast<unsigned long long>(stats.publish_age_seconds < 0.0
                                            ? 0.0
                                            : stats.publish_age_seconds),
        driver_->ready() ? "yes" : "no",
        snapshot && snapshot->meta().converged ? "yes" : "no",
        snapshot && snapshot->meta().warm_start ? "yes" : "no",
        // Resolving here also refreshes the fsim_simd_level gauge for
        // METRICS readers that never ran a dense solve.
        simd::SimdLevelName(simd::ResolveSimdLevel(SimdMode::kAuto)));
    if (full) {
      for (const obs::HistogramEntry& entry :
           obs::Registry::Default().HistogramEntries()) {
        const obs::HistogramSnapshot& s = entry.snapshot;
        if (s.count == 0) continue;
        // Nanosecond histograms quote microseconds (readable at serve
        // latencies); count histograms quote raw values.
        const bool ns = entry.unit == obs::Histogram::Unit::kNanoseconds;
        const double scale = ns ? 1e-3 : 1.0;
        const char* suffix = ns ? "_us" : "";
        const std::string label =
            entry.key.label_key.empty()
                ? std::string()
                : StrFormat("{%s=\"%s\"}", entry.key.label_key.c_str(),
                            entry.key.label_value.c_str());
        out << StrFormat(
            "HIST %s%s count=%llu p50%s=%.3f p90%s=%.3f p99%s=%.3f "
            "max%s=%.3f\n",
            entry.key.family.c_str(), label.c_str(),
            static_cast<unsigned long long>(s.count), suffix,
            s.Quantile(0.5) * scale, suffix, s.Quantile(0.9) * scale, suffix,
            s.Quantile(0.99) * scale, suffix,
            static_cast<double>(s.max) * scale);
      }
      out << "END\n";
    }
    return true;
  }
  if (verb == "METRICS") {
    // Count-prefixed framing so line-oriented clients know where the
    // exposition payload ends without sentinel parsing.
    const std::string payload = obs::Registry::Default().RenderPrometheus();
    const size_t nlines = static_cast<size_t>(
        std::count(payload.begin(), payload.end(), '\n'));
    out << StrFormat("METRICS %zu\n", nlines) << payload;
    return true;
  }
  out << StrFormat("ERR unknown request '%.*s'\n",
                   static_cast<int>(verb.size()), verb.data());
  return true;
}

void FSimService::HandleBatch(size_t n, double budget_ms, std::istream& in,
                              std::ostream& out) {
  // Same histogram as QueryEngine::RunBatch; covers parse + answer + write
  // (the full protocol-visible latency).
  obs::ScopedLatencyTimer timer(queries_.batch_latency());
  // Consume all n lines before answering, so a malformed entry cannot
  // desynchronize the stream. The same line cap and NUL rejection as the
  // outer loop apply per entry, as in-band per-entry errors.
  std::vector<Query> queries(n);
  std::vector<std::string> errors(n);
  std::string line;
  bool overflowed = false;
  for (size_t i = 0; i < n; ++i) {
    if (!ReadLineCapped(in, &line, kMaxLineBytes, &overflowed)) {
      errors[i] = "unexpected end of stream inside BATCH";
      for (size_t j = i + 1; j < n; ++j) errors[j] = errors[i];
      break;
    }
    if (overflowed) {
      errors[i] = StrFormat("line exceeds %zu bytes", kMaxLineBytes);
      continue;
    }
    if (line.find('\0') != std::string::npos) {
      errors[i] = "embedded NUL byte in request";
      continue;
    }
    const auto tokens = SplitWhitespace(Trim(line));
    ParseQuery(tokens, &queries[i], &errors[i]);
  }

  const SnapshotPtr snapshot = store_.Acquire();
  if (snapshot == nullptr) {
    out << "ERR no snapshot published yet\n";
    return;
  }
  const QueryEngine::Clock::time_point deadline =
      budget_ms > 0.0
          ? QueryEngine::Clock::now() +
                std::chrono::duration_cast<QueryEngine::Clock::duration>(
                    std::chrono::duration<double, std::milli>(budget_ms))
          : QueryEngine::Clock::time_point::max();
  out << StrFormat("BATCH %zu v%llu\n", n,
                   static_cast<unsigned long long>(
                       snapshot->meta().version));
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].empty()) {
      out << "ERR " << errors[i] << "\n";
      continue;
    }
    PrintResult(QueryEngine::Answer(*snapshot, queries[i], deadline), out);
  }
}

}  // namespace fsim
