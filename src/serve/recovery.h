// Crash recovery for the serving layer: durable score snapshots plus the
// WAL tail (serve/wal.h) reassemble the exact pre-crash serving state.
//
// The durability directory interleaves two kinds of files:
//
//   wal-<lsn>.log     edit records (see wal.h)
//   snap-<lsn>.fsnap  a full state snapshot as of LSN <lsn>: both graphs
//                     (binary format, graph/binary_io.h) and the converged
//                     scores (text format, core/scores_io.h), framed with a
//                     magic, version and whole-payload FNV checksum
//
// Snapshots are written atomically (tmp file + fsync + rename + directory
// fsync), so a crash mid-persist leaves either the old set or the old set
// plus one complete new file — never a half-written visible snapshot.
// Recovery walks snapshots newest-first, discards any that fail their
// checksum, replays the WAL records with lsn > snapshot lsn, and reports
// everything the caller (FSimService::Create) needs to rebuild: graphs at
// the snapshot point, warm-seed scores, the replay tail, and the LSN the
// writer should continue from.
#ifndef FSIM_SERVE_RECOVERY_H_
#define FSIM_SERVE_RECOVERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/fsim_scores.h"
#include "graph/graph.h"
#include "serve/wal.h"

namespace fsim {

/// Durability knobs for the serving layer (off when `dir` is empty).
struct DurabilityOptions {
  /// Directory for WAL segments and snapshots; created if missing.
  std::string dir;
  /// Persist a durable snapshot (and rotate the WAL) once this many edits
  /// have been applied since the last one. 0 disables periodic snapshots
  /// (the WAL alone still makes every acknowledged edit durable).
  uint64_t snapshot_every_edits = 64;
  /// How many snapshots to retain; older ones (and the WAL segments they
  /// fully cover) are deleted after each successful persist.
  size_t keep_snapshots = 2;
};

/// What recovery reassembled from a durability directory.
struct RecoveredState {
  /// Graphs as of `snapshot_lsn` (the caller's base graphs when no valid
  /// snapshot exists).
  Graph g1;
  Graph g2;
  bool have_snapshot = false;
  uint64_t snapshot_lsn = 0;
  /// Warm seed for IncrementalFSim::Create (empty without a snapshot).
  std::optional<FSimScores> scores;
  /// WAL records past the snapshot, ascending — replay these through the
  /// incremental engine to reach the pre-crash state.
  std::vector<EditRecord> tail;
  /// The LSN the resumed WalWriter should continue from.
  uint64_t next_lsn = 1;
  /// Torn bytes truncated from the newest WAL segment (0 on clean runs).
  uint64_t torn_bytes = 0;
  /// Snapshots that failed validation and were skipped (newest-first scan).
  size_t snapshots_discarded = 0;
};

/// Atomically persists a snapshot of both graphs and the scores as of
/// `lsn`. On return the snapshot survives a crash; on error the previous
/// snapshot set is untouched.
Status PersistSnapshot(const std::string& dir, uint64_t lsn, const Graph& g1,
                       const Graph& g2, const FSimScores& scores);

/// Loads the newest snapshot that validates, skipping corrupt ones.
/// NotFound when no snapshot validates (recovery then starts from the base
/// graphs and replays the whole WAL).
struct LoadedSnapshot {
  uint64_t lsn = 0;
  Graph g1;
  Graph g2;
  FSimScores scores;
  size_t discarded = 0;  // corrupt snapshots skipped before this one
};
Result<LoadedSnapshot> LoadLatestSnapshot(const std::string& dir);

/// Full recovery: ensures `dir` exists, loads the latest valid snapshot
/// (falling back to the base graphs), reads the WAL with torn-tail
/// truncation, and splits out the replay tail. The returned state is ready
/// to hand to IncrementalFSim::Create + RefreshDriver replay.
Result<RecoveredState> RecoverServeState(const std::string& dir, Graph base_g1,
                                         Graph base_g2);

/// Deletes all but the newest `keep` snapshots. Returns how many were
/// removed. WAL segments are cleaned separately via
/// RemoveObsoleteWalSegments against the oldest *retained* snapshot's LSN.
Result<size_t> RemoveObsoleteSnapshots(const std::string& dir, size_t keep);

/// The LSN of the oldest retained snapshot (0 when none) — the safe bound
/// for RemoveObsoleteWalSegments.
Result<uint64_t> OldestSnapshotLsn(const std::string& dir);

}  // namespace fsim

#endif  // FSIM_SERVE_RECOVERY_H_
