// Concurrent query API over the published snapshots: every call acquires
// the current snapshot once and answers entirely against it, so a single
// query — and every query of one batch — observes one consistent score
// version even while the refresh driver publishes new ones underneath.
//
// Deadline budgets (overload degradation, docs/serving.md): a query may
// carry a time budget. Once the budget is exhausted — typically midway
// through a large batch — expensive answers degrade instead of blowing the
// deadline: TOPK and THRESH fall back to the snapshot's precomputed top-k
// cache prefix (exact for k <= cache_k, a best-effort prefix beyond it) and
// the result is marked `degraded`. PAIR lookups are O(1) and never degrade.
#ifndef FSIM_SERVE_QUERY_H_
#define FSIM_SERVE_QUERY_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "serve/snapshot.h"

namespace fsim {

/// One serving request.
struct Query {
  enum class Kind {
    kPair,       // FSimχ(u, v)
    kTopK,       // k best v for u
    kThreshold,  // all v with FSimχ(u, v) >= tau
  };
  Kind kind = Kind::kPair;
  NodeId u = 0;
  NodeId v = 0;     // kPair
  size_t k = 0;     // kTopK
  double tau = 0.0; // kThreshold
  /// Deadline budget in milliseconds; 0 = unlimited. Run() starts the
  /// clock on entry; RunBatch shares one clock across the whole batch.
  double budget_ms = 0.0;
};

/// The answer, stamped with the snapshot version that produced it.
struct QueryResult {
  Query::Kind kind = Query::Kind::kPair;
  uint64_t version = 0;
  double score = 0.0;                              // kPair
  std::vector<std::pair<NodeId, double>> entries;  // kTopK / kThreshold
  /// True when the deadline budget forced a cache-prefix answer instead of
  /// the exact row selection (entries may be fewer than requested).
  bool degraded = false;
};

/// Stateless facade over a SnapshotStore. Safe to share across any number
/// of reader threads; never blocks (snapshot acquisition is an atomic
/// load). An optional ThreadPool fans large RunBatch calls out across
/// workers — sound because every query of a batch reads the same acquired
/// snapshot and writes only its own result slot. The pool must not be
/// shared with concurrent ParallelFor callers (ThreadPool regions are
/// exclusive); single queries never touch it.
class QueryEngine {
 public:
  using Clock = std::chrono::steady_clock;

  /// The per-verb serve latency histogram family (obs/metrics.h); label
  /// values are the protocol verb names plus "BATCH" for whole batches.
  static constexpr char kLatencyFamily[] = "fsim_serve_query_seconds";

  explicit QueryEngine(const SnapshotStore* store, ThreadPool* pool = nullptr);

  /// Answers one query against the current snapshot. NotFound when no
  /// snapshot has been published yet. Honors query.budget_ms.
  Result<QueryResult> Run(const Query& query) const;

  /// Answers all queries against ONE acquired snapshot (cross-query
  /// consistency within the batch). NotFound when no snapshot exists.
  /// Batches of at least kParallelBatchMin queries run on the pool when one
  /// was supplied; results are in query order either way. `budget_ms` (0 =
  /// unlimited) is one shared deadline for the whole batch: queries
  /// evaluated after it expires degrade to cache answers.
  Result<std::vector<QueryResult>> RunBatch(std::span<const Query> queries,
                                            double budget_ms = 0.0) const;

  /// Below this batch size the pool dispatch costs more than the queries.
  static constexpr size_t kParallelBatchMin = 64;

  /// The BATCH latency handle, shared with FSimService::HandleBatch so the
  /// protocol's streaming batch path lands in the same histogram as
  /// RunBatch.
  obs::Histogram* batch_latency() const { return latency_batch_; }

  /// The per-query evaluation, usable directly by callers that manage
  /// snapshot lifetime themselves. Degrades expensive answers once
  /// `deadline` has passed (the default never does).
  static QueryResult Answer(const FSimSnapshot& snapshot, const Query& query,
                            Clock::time_point deadline =
                                Clock::time_point::max());

 private:
  const SnapshotStore* store_;
  ThreadPool* pool_;
  // Latency histogram handles, resolved once at construction (registry
  // lookups are mutex-guarded; recording through the handles is not).
  obs::Histogram* latency_pair_;
  obs::Histogram* latency_topk_;
  obs::Histogram* latency_thresh_;
  obs::Histogram* latency_batch_;
};

}  // namespace fsim

#endif  // FSIM_SERVE_QUERY_H_
