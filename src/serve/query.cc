#include "serve/query.h"

namespace fsim {

QueryResult QueryEngine::Answer(const FSimSnapshot& snapshot,
                                const Query& query) {
  QueryResult result;
  result.kind = query.kind;
  result.version = snapshot.meta().version;
  switch (query.kind) {
    case Query::Kind::kPair:
      result.score = snapshot.PairScore(query.u, query.v);
      break;
    case Query::Kind::kTopK:
      result.entries = snapshot.TopK(query.u, query.k);
      break;
    case Query::Kind::kThreshold:
      result.entries = snapshot.ThresholdNeighbors(query.u, query.tau);
      break;
  }
  return result;
}

Result<QueryResult> QueryEngine::Run(const Query& query) const {
  SnapshotPtr snapshot = store_->Acquire();
  if (snapshot == nullptr) {
    return Status::NotFound("no snapshot published yet");
  }
  return Answer(*snapshot, query);
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    std::span<const Query> queries) const {
  SnapshotPtr snapshot = store_->Acquire();
  if (snapshot == nullptr) {
    return Status::NotFound("no snapshot published yet");
  }
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (const Query& query : queries) {
    results.push_back(Answer(*snapshot, query));
  }
  return results;
}

}  // namespace fsim
