#include "serve/query.h"

#include <algorithm>

#include "obs/trace.h"

namespace fsim {

namespace {

QueryEngine::Clock::time_point DeadlineFor(double budget_ms) {
  if (budget_ms <= 0.0) return QueryEngine::Clock::time_point::max();
  return QueryEngine::Clock::now() +
         std::chrono::duration_cast<QueryEngine::Clock::duration>(
             std::chrono::duration<double, std::milli>(budget_ms));
}

/// Best-effort TOPK from the snapshot's precomputed cache prefix: the first
/// min(k, cache_k, |row|) ranked entries, no row scan, no allocation beyond
/// the copy. Exact when k fits the cache — degraded only beyond it.
std::vector<std::pair<NodeId, double>> CachePrefixTopK(
    const FSimSnapshot& snapshot, NodeId u, size_t k, bool* degraded) {
  const auto cached = snapshot.CachedTopK(u);
  const size_t n = std::min(k, cached.size());
  // A short cache row can be short because the row itself is short (exact)
  // or because cache_k < k truncated it (degraded); only the latter can
  // lose entries.
  *degraded = k > snapshot.cache_k() && cached.size() == snapshot.cache_k();
  return {cached.begin(), cached.begin() + n};
}

constexpr char kLatencyHelp[] =
    "End-to-end query latency by verb (snapshot acquire + answer)";

}  // namespace

QueryEngine::QueryEngine(const SnapshotStore* store, ThreadPool* pool)
    : store_(store), pool_(pool) {
  obs::Registry& registry = obs::Registry::Default();
  const auto histogram = [&](const char* verb) {
    return registry.GetHistogram(kLatencyFamily, kLatencyHelp,
                                 obs::Histogram::Unit::kNanoseconds, "verb",
                                 verb);
  };
  latency_pair_ = histogram("PAIR");
  latency_topk_ = histogram("TOPK");
  latency_thresh_ = histogram("THRESH");
  latency_batch_ = histogram("BATCH");
}

QueryResult QueryEngine::Answer(const FSimSnapshot& snapshot,
                                const Query& query,
                                Clock::time_point deadline) {
  QueryResult result;
  result.kind = query.kind;
  result.version = snapshot.meta().version;
  const bool over_budget = deadline != Clock::time_point::max() &&
                           Clock::now() >= deadline;
  switch (query.kind) {
    case Query::Kind::kPair:
      // O(1) hash lookup — cheaper than any degradation bookkeeping.
      result.score = snapshot.PairScore(query.u, query.v);
      break;
    case Query::Kind::kTopK:
      if (over_budget) {
        result.entries = CachePrefixTopK(snapshot, query.u, query.k,
                                         &result.degraded);
      } else {
        result.entries = snapshot.TopK(query.u, query.k);
      }
      break;
    case Query::Kind::kThreshold:
      if (over_budget) {
        // Cache prefix filtered by tau: every returned entry is a true
        // hit, but hits ranked past the cache depth are missing.
        bool truncated = false;
        auto prefix = CachePrefixTopK(snapshot, query.u,
                                      snapshot.cache_k(), &truncated);
        auto& entries = result.entries;
        for (const auto& entry : prefix) {
          if (entry.second >= query.tau) entries.push_back(entry);
        }
        // Degraded unless the cache provably holds the whole answer: the
        // full (untruncated) row fit in the cache, or the prefix's tail
        // already fell below tau.
        const auto cached = snapshot.CachedTopK(query.u);
        const bool complete =
            (cached.size() < snapshot.cache_k()) ||
            (!cached.empty() && cached.back().second < query.tau);
        result.degraded = !complete;
      } else {
        result.entries = snapshot.ThresholdNeighbors(query.u, query.tau);
      }
      break;
  }
  return result;
}

Result<QueryResult> QueryEngine::Run(const Query& query) const {
  obs::Histogram* latency =
      query.kind == Query::Kind::kPair
          ? latency_pair_
          : (query.kind == Query::Kind::kTopK ? latency_topk_
                                              : latency_thresh_);
  obs::ScopedLatencyTimer timer(latency);
  SnapshotPtr snapshot = store_->Acquire();
  if (snapshot == nullptr) {
    return Status::NotFound("no snapshot published yet");
  }
  return Answer(*snapshot, query, DeadlineFor(query.budget_ms));
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    std::span<const Query> queries, double budget_ms) const {
  // One observation for the whole batch — per-query timing inside the
  // fan-out lambda would put two clock reads around O(1) answers.
  obs::ScopedLatencyTimer timer(latency_batch_);
  FSIM_TRACE_SPAN_ARG("serve.batch", queries.size());
  SnapshotPtr snapshot = store_->Acquire();
  if (snapshot == nullptr) {
    return Status::NotFound("no snapshot published yet");
  }
  const Clock::time_point deadline = DeadlineFor(budget_ms);
  std::vector<QueryResult> results(queries.size());
  if (pool_ != nullptr && queries.size() >= kParallelBatchMin) {
    // Top-k/threshold answers allocate entry vectors, so chunks are sized
    // for rebalancing (a mixed batch's expensive queries cluster).
    constexpr size_t kBatchGrain = 16;
    pool_->ParallelForChunked(
        queries.size(), kBatchGrain,
        [&](int /*worker*/, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            results[i] = Answer(*snapshot, queries[i], deadline);
          }
        });
  } else {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = Answer(*snapshot, queries[i], deadline);
    }
  }
  return results;
}

}  // namespace fsim
