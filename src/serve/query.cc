#include "serve/query.h"

namespace fsim {

QueryResult QueryEngine::Answer(const FSimSnapshot& snapshot,
                                const Query& query) {
  QueryResult result;
  result.kind = query.kind;
  result.version = snapshot.meta().version;
  switch (query.kind) {
    case Query::Kind::kPair:
      result.score = snapshot.PairScore(query.u, query.v);
      break;
    case Query::Kind::kTopK:
      result.entries = snapshot.TopK(query.u, query.k);
      break;
    case Query::Kind::kThreshold:
      result.entries = snapshot.ThresholdNeighbors(query.u, query.tau);
      break;
  }
  return result;
}

Result<QueryResult> QueryEngine::Run(const Query& query) const {
  SnapshotPtr snapshot = store_->Acquire();
  if (snapshot == nullptr) {
    return Status::NotFound("no snapshot published yet");
  }
  return Answer(*snapshot, query);
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    std::span<const Query> queries) const {
  SnapshotPtr snapshot = store_->Acquire();
  if (snapshot == nullptr) {
    return Status::NotFound("no snapshot published yet");
  }
  std::vector<QueryResult> results(queries.size());
  if (pool_ != nullptr && queries.size() >= kParallelBatchMin) {
    // Top-k/threshold answers allocate entry vectors, so chunks are sized
    // for rebalancing (a mixed batch's expensive queries cluster).
    constexpr size_t kBatchGrain = 16;
    pool_->ParallelForChunked(
        queries.size(), kBatchGrain,
        [&](int /*worker*/, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            results[i] = Answer(*snapshot, queries[i]);
          }
        });
  } else {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = Answer(*snapshot, queries[i]);
    }
  }
  return results;
}

}  // namespace fsim
