// Versioned, immutable score snapshots — the unit of publication of the
// serving layer (serve/service.h). A snapshot freezes one FSimScores table
// (shared, never copied after freeze), precomputes a per-node top-k cache so
// the hot TopK query never rescans a row, and carries version/provenance
// metadata. SnapshotStore is the publish/acquire rendezvous: publishing
// atomically swaps the current snapshot, acquiring is a lock-free refcount
// bump, so readers never block and a snapshot stays alive until its last
// reader drops it.
#ifndef FSIM_SERVE_SNAPSHOT_H_
#define FSIM_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/fsim_scores.h"
#include "graph/graph.h"

namespace fsim {

/// Provenance and freshness metadata of one published snapshot.
struct SnapshotMeta {
  /// Strictly increasing across publishes into one SnapshotStore
  /// (SnapshotStore::NextVersion hands out the numbers).
  uint64_t version = 0;
  /// Total edits reflected in these scores since the serving engine started.
  uint64_t edits_applied = 0;
  /// Whether the producing engine reports full convergence (see
  /// IncrementalFSim::converged()).
  bool converged = true;
  /// True when the scores were warm-started from disk (scores_io) rather
  /// than computed in-process.
  bool warm_start = false;
  /// Wall-clock cost of building this snapshot: the producer's score
  /// copy/load cost (pre-filled by the caller) plus the top-k cache build
  /// (added by the FSimSnapshot constructor).
  double build_seconds = 0.0;
};

/// An immutable, query-ready view of one score version: frozen shared
/// scores plus a per-node top-k cache (the first `cache_k` ranked entries
/// of every row, selected once at build time with bounded-heap selection).
class FSimSnapshot {
 public:
  /// Builds the top-k cache over `scores` (one linear walk of the pair
  /// table, O(row log k) selection per row).
  FSimSnapshot(SharedFSimScores scores, size_t cache_k, SnapshotMeta meta);

  /// FSimχ(u, v); 0 for pairs outside the maintained candidate set.
  double PairScore(NodeId u, NodeId v) const { return scores_->Score(u, v); }

  bool Contains(NodeId u, NodeId v) const { return scores_->Contains(u, v); }

  /// The cached ranking prefix of row u: min(cache_k, |row u|) entries,
  /// descending score (ties by node id). Empty for nodes without
  /// maintained pairs.
  std::span<const std::pair<NodeId, double>> CachedTopK(NodeId u) const {
    if (static_cast<size_t>(u) + 1 >= cache_offsets_.size()) return {};
    return {cache_entries_.data() + cache_offsets_[u],
            cache_entries_.data() + cache_offsets_[u + 1]};
  }

  /// The k best (v, score) for u. Served from the cache when k <= cache_k
  /// (no row scan); falls back to FSimScores::TopK selection otherwise.
  std::vector<std::pair<NodeId, double>> TopK(NodeId u, size_t k) const;

  /// All (v, score) of row u with score >= tau, descending (ties by id).
  std::vector<std::pair<NodeId, double>> ThresholdNeighbors(NodeId u,
                                                            double tau) const;

  const FSimScores& scores() const { return *scores_; }
  SharedFSimScores shared_scores() const { return scores_; }
  const SnapshotMeta& meta() const { return meta_; }
  size_t cache_k() const { return cache_k_; }

  /// Heap footprint of the top-k cache.
  size_t CacheBytes() const {
    return cache_entries_.capacity() * sizeof(cache_entries_[0]) +
           cache_offsets_.capacity() * sizeof(uint32_t);
  }

 private:
  void BuildCache(const std::vector<uint64_t>& keys);

  SharedFSimScores scores_;
  size_t cache_k_;
  // CSR over u: row u's cached entries live in
  // cache_entries_[cache_offsets_[u] .. cache_offsets_[u + 1]).
  std::vector<uint32_t> cache_offsets_;
  std::vector<std::pair<NodeId, double>> cache_entries_;
  SnapshotMeta meta_;
};

using SnapshotPtr = std::shared_ptr<const FSimSnapshot>;

/// The publish/acquire point between one publisher (the refresh driver) and
/// any number of concurrent readers. Acquire is a single atomic
/// shared_ptr load — wait-free for readers, and the returned reference
/// keeps that snapshot version alive for the reader's whole request even
/// while newer versions are published over it.
class SnapshotStore {
 public:
  /// Hands out the next version number; builders stamp their SnapshotMeta
  /// with it before constructing the snapshot.
  uint64_t NextVersion() { return next_version_.fetch_add(1) + 1; }

  /// Atomically replaces the current snapshot. Serialized across
  /// publishers; snapshot versions must be fresh NextVersion() values, and
  /// a stale publish (version below the current one, possible only if two
  /// publishers race) is dropped. Returns whether the snapshot became
  /// current.
  bool Publish(SnapshotPtr snapshot);

  /// The current snapshot, or nullptr before the first publish. Never
  /// blocks.
  SnapshotPtr Acquire() const { return current_.load(); }

  /// Version of the current snapshot (0 before the first publish).
  uint64_t version() const { return published_version_.load(); }

  size_t publish_count() const { return publish_count_.load(); }

  /// Structural invariants of the publish chain: the recorded version
  /// history is strictly increasing (a regressed or duplicated version
  /// means a publish raced past the staleness gate), the newest recorded
  /// version is the published one, no published version exceeds what
  /// NextVersion handed out, and the published head is alive with refcount
  /// >= 1 (the store's own reference — a zero would mean readers can
  /// acquire a freed snapshot). Runs automatically after every Publish
  /// under FSIM_DEBUG_CHECKS. Bumps ValidatorCounters
  /// "SnapshotStore::ValidateChain".
  Status ValidateChain() const;

 private:
  // check_test.cc corrupts the version chain through this to prove the
  // validator catches a regressed publish history.
  friend struct SnapshotStoreTestAccess;

  /// ValidateChain body; the caller must hold publish_mu_.
  Status ValidateChainLocked() const;

  // Publish order within the guarded section is the chain order.
  static constexpr size_t kVersionChainCapacity = 64;

  // guards: version_chain_, and serializes publishers (current_ and the
  // version counters stay atomics so readers never take it).
  mutable std::mutex publish_mu_;
  // ordering: seq_cst store/load — publishing must not reorder past the
  // version bump; Acquire is the readers' wait-free load.
  std::atomic<SnapshotPtr> current_;
  std::atomic<uint64_t> next_version_{0};       // ordering: fetch_add ticket
  std::atomic<uint64_t> published_version_{0};  // ordering: behind publish_mu_
  std::atomic<size_t> publish_count_{0};        // ordering: relaxed telemetry
  // The last kVersionChainCapacity published versions, oldest first — the
  // "chain" ValidateChain() audits.
  std::vector<uint64_t> version_chain_;
};

}  // namespace fsim

#endif  // FSIM_SERVE_SNAPSHOT_H_
