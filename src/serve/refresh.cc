#include "serve/refresh.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsim {

namespace {

/// Registry handles resolved once (recording is lock-free; the lookup is
/// not, and ApplyBatchLocked sits behind every refresh round).
struct RefreshMetrics {
  obs::Histogram* queue_wait;
  obs::Histogram* apply_latency;
  obs::Histogram* publish_latency;
  obs::Histogram* persist_latency;
  obs::Counter* edits_applied;
  obs::Counter* edits_coalesced;
  obs::Counter* edits_failed;
  obs::Counter* edits_shed;

  static const RefreshMetrics& Get() {
    static const RefreshMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      constexpr char kEditsFamily[] = "fsim_refresh_edits_total";
      constexpr char kEditsHelp[] =
          "Edit dispositions across all refresh drivers";
      RefreshMetrics m;
      m.queue_wait = registry.GetHistogram(
          "fsim_refresh_queue_wait_seconds",
          "Submit-to-drain wait of queued edits (coalesced edits report "
          "the oldest submission's wait)",
          obs::Histogram::Unit::kNanoseconds);
      m.apply_latency = registry.GetHistogram(
          "fsim_refresh_apply_seconds",
          "Incremental repair time per drained batch",
          obs::Histogram::Unit::kNanoseconds);
      m.publish_latency = registry.GetHistogram(
          "fsim_refresh_publish_seconds",
          "Snapshot copy + top-k cache build per publish",
          obs::Histogram::Unit::kNanoseconds);
      m.persist_latency = registry.GetHistogram(
          "fsim_refresh_persist_seconds",
          "Durable snapshot write per persist (excludes WAL rotation)",
          obs::Histogram::Unit::kNanoseconds);
      m.edits_applied =
          registry.GetCounter(kEditsFamily, kEditsHelp, "result", "applied");
      m.edits_coalesced =
          registry.GetCounter(kEditsFamily, kEditsHelp, "result", "coalesced");
      m.edits_failed =
          registry.GetCounter(kEditsFamily, kEditsHelp, "result", "failed");
      m.edits_shed =
          registry.GetCounter(kEditsFamily, kEditsHelp, "result", "shed");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Status EditQueue::Admit(const EditOp& op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ > 0 && ops_.size() + reserved_ >= capacity_) {
    // Full — admissible only if it will coalesce onto a queued edit of the
    // same edge (last-op-wins keeps the newest intent without growth).
    const bool coalescible =
        (op.graph_index == 1 || op.graph_index == 2) &&
        index_[op.graph_index == 2].count(PairKey(op.from, op.to)) > 0;
    if (!coalescible) {
      return Status::ResourceExhausted(
          "edit queue is full (overload shed; retry after a refresh)");
    }
  }
  ++reserved_;
  return Status::OK();
}

bool EditQueue::CommitLocked(const EditOp& op) {
  if (reserved_ > 0) --reserved_;
  if (op.graph_index != 1 && op.graph_index != 2) {
    // Let invalid ops flow through to the driver's edits_failed counter.
    ops_.push_back(op);
    return false;
  }
  auto [it, inserted] = index_[op.graph_index == 2].try_emplace(
      PairKey(op.from, op.to), ops_.size());
  if (inserted) {
    ops_.push_back(op);
    return false;
  }
  EditOp& queued = ops_[it->second];
  queued.insert = op.insert;
  if (op.lsn > queued.lsn) queued.lsn = op.lsn;
  return true;
}

bool EditQueue::CommitAdmitted(const EditOp& op) {
  bool coalesced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    coalesced = CommitLocked(op);
  }
  cv_.notify_all();
  return coalesced;
}

void EditQueue::CancelAdmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (reserved_ > 0) --reserved_;
}

Status EditQueue::TryPush(const EditOp& op, bool* coalesced) {
  bool merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ > 0 && ops_.size() + reserved_ >= capacity_) {
      const bool coalescible =
          (op.graph_index == 1 || op.graph_index == 2) &&
          index_[op.graph_index == 2].count(PairKey(op.from, op.to)) > 0;
      if (!coalescible) {
        return Status::ResourceExhausted(
            "edit queue is full (overload shed; retry after a refresh)");
      }
    }
    ++reserved_;  // consumed immediately by the commit below
    merged = CommitLocked(op);
  }
  cv_.notify_all();
  if (coalesced != nullptr) *coalesced = merged;
  return Status::OK();
}

size_t EditQueue::Drain(std::vector<EditOp>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = ops_.size();
  out->insert(out->end(), ops_.begin(), ops_.end());
  ops_.clear();
  index_[0].clear();
  index_[1].clear();
  return n;
}

size_t EditQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.size();
}

bool EditQueue::WaitNonEmpty(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [this] { return !ops_.empty(); });
  return !ops_.empty();
}

RefreshDriver::RefreshDriver(Graph g1, Graph g2, FSimConfig config,
                             IncrementalOptions inc_options,
                             RefreshPolicy policy, SnapshotStore* store)
    : g1_(std::move(g1)),
      g2_(std::move(g2)),
      config_(std::move(config)),
      inc_options_(inc_options),
      policy_(policy),
      store_(store),
      queue_(policy.queue_capacity) {
  FSIM_CHECK(store_ != nullptr);
  // Callback gauges owned by this driver instance: the newest-constructed
  // driver wins the process-wide gauge (re-register replaces), and the
  // owner token keeps a dying instance from tearing down its successor's.
  obs::Registry& registry = obs::Registry::Default();
  registry.RegisterCallbackGauge(
      "fsim_refresh_queue_depth", "Edits queued awaiting the next drain",
      this, [this] { return static_cast<double>(queue_.size()); });
  registry.RegisterCallbackGauge(
      "fsim_publish_age_seconds",
      "Age of the published snapshot (0 before the first publish)", this,
      [this] {
        const uint64_t t = last_publish_ns_.load(std::memory_order_relaxed);
        if (t == 0) return 0.0;
        return static_cast<double>(obs::MonotonicNanos() - t) * 1e-9;
      });
}

RefreshDriver::~RefreshDriver() {
  (void)Stop();
  obs::Registry& registry = obs::Registry::Default();
  registry.UnregisterCallbackGauge("fsim_refresh_queue_depth", this);
  registry.UnregisterCallbackGauge("fsim_publish_age_seconds", this);
  registry.UnregisterCallbackGauge("fsim_wal_pending", this);
}

Status RefreshDriver::EnableDurability(DurabilityOptions options,
                                       RecoveredState recovered) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability requires a directory");
  }
  std::lock_guard<std::timed_mutex> lock(apply_mu_);
  if (inc_ != nullptr || wal_ != nullptr) {
    return Status::Internal(
        "durability must be attached before Init/Start (the WAL cannot "
        "adopt edits applied without it)");
  }
  durability_ = std::move(options);
  warm_seed_ = std::move(recovered.scores);
  recovered_lsn_ = recovered.snapshot_lsn;
  applied_lsn_ = recovered.snapshot_lsn;
  persisted_lsn_ = recovered.have_snapshot ? recovered.snapshot_lsn : 0;
  replay_tail_.clear();
  replay_tail_.reserve(recovered.tail.size());
  for (const EditRecord& rec : recovered.tail) {
    replay_tail_.push_back(EditOp{rec.graph_index, rec.from, rec.to,
                                  rec.insert, rec.lsn});
  }
  FSIM_ASSIGN_OR_RETURN(wal_,
                        WalWriter::Open(durability_.dir, recovered.next_lsn));
  // Registered only once wal_ exists; wal_ is never reassigned afterwards,
  // so the callback's unlocked read is safe (the registry mutex orders the
  // registration against any concurrent render).
  obs::Registry::Default().RegisterCallbackGauge(
      "fsim_wal_pending",
      "WAL records written but not yet fsync'd (group-commit window)", this,
      [this] { return static_cast<double>(wal_->pending()); });
  return Status::OK();
}

Status RefreshDriver::InitLocked() {
  FSIM_FAILPOINT("serve.refresh.init_solve");
  auto inc = IncrementalFSim::Create(g1_, g2_, config_, inc_options_,
                                     warm_seed_ ? &*warm_seed_ : nullptr);
  if (!inc.ok()) return inc.status();
  inc_ = std::make_unique<IncrementalFSim>(std::move(inc).ValueOrDie());
  warm_seed_.reset();  // the engine owns the state now
  const bool replayed = !replay_tail_.empty();
  if (replayed) {
    stats_.edits_replayed += replay_tail_.size();
    (void)ApplyBatchLocked(replay_tail_);
    replay_tail_.clear();
    replay_tail_.shrink_to_fit();
  }
  PublishLocked();
  if (wal_ != nullptr) {
    // Compact recovery work up front: a durable snapshot at the replayed
    // LSN means the next crash replays only edits newer than this boot.
    const Status persisted = PersistSnapshotLocked();
    if (!persisted.ok()) {
      ++stats_.snapshot_persist_failures;  // WAL still covers everything
    }
  }
  return Status::OK();
}

Status RefreshDriver::Init() {
  {
    std::lock_guard<std::mutex> lock(init_mu_);
    if (init_done_) return Status::OK();
  }
  Status status;
  {
    std::lock_guard<std::timed_mutex> lock(apply_mu_);
    if (inc_ == nullptr) status = InitLocked();
  }
  {
    std::lock_guard<std::mutex> lock(init_mu_);
    if (status.ok()) init_done_ = true;
    init_status_ = status;
  }
  init_cv_.notify_all();
  return status;
}

bool RefreshDriver::ready() const {
  std::lock_guard<std::mutex> lock(init_mu_);
  return init_done_;
}

Status RefreshDriver::init_status() const {
  std::lock_guard<std::mutex> lock(init_mu_);
  return init_status_;
}

Status RefreshDriver::Submit(const EditOp& op) {
  FSIM_FAILPOINT("serve.queue.push");
  if (op.graph_index != 1 && op.graph_index != 2) {
    return Status::InvalidArgument("edit graph index must be 1 or 2");
  }
  // Admission BEFORE the durable append: a shed edit must leave no ghost
  // record for recovery to replay against a client that was told "no".
  Status admitted = queue_.Admit(op);
  if (!admitted.ok()) {
    shed_.fetch_add(1);
    RefreshMetrics::Get().edits_shed->Inc();
    return admitted;
  }
  EditOp stamped = op;
  stamped.submit_ns = obs::MonotonicNanos();
  if (wal_ != nullptr) {
    EditRecord rec;
    rec.graph_index = static_cast<uint8_t>(op.graph_index);
    rec.insert = op.insert;
    rec.from = op.from;
    rec.to = op.to;
    auto lsn = wal_->AppendDurable(rec);
    if (!lsn.ok()) {
      queue_.CancelAdmitted();
      wal_failures_.fetch_add(1);
      return lsn.status();
    }
    stamped.lsn = *lsn;
  }
  if (queue_.CommitAdmitted(stamped)) {
    // Coalesced onto a queued same-edge op: its net effect still applies
    // with the batch, but it never reaches the engine as its own edit.
    queue_coalesced_.fetch_add(1);
    RefreshMetrics::Get().edits_coalesced->Inc();
  }
  submitted_.fetch_add(1);
  return Status::OK();
}

size_t RefreshDriver::ApplyBatchLocked(const std::vector<EditOp>& batch) {
  const RefreshMetrics& metrics = RefreshMetrics::Get();
  FSIM_TRACE_SPAN_ARG("refresh.apply", batch.size());
  const uint64_t drain_ns = obs::MonotonicNanos();
  // Coalesce the burst to one net op per (graph, from, to): later
  // submissions win, order of first appearance is kept (distinct-edge edits
  // commute at the graph level, so this preserves the batch's net effect).
  batch_scratch_.clear();
  std::unordered_map<uint64_t, size_t> last_op[2];
  size_t invalid = 0;
  uint64_t max_lsn = 0;
  for (const EditOp& op : batch) {
    // Every acknowledged LSN in the batch counts as applied once the batch
    // lands, coalesced or not — the engine reflects its net effect.
    if (op.lsn > max_lsn) max_lsn = op.lsn;
    // Replayed/synthetic ops carry no submit stamp and skip the wait
    // histogram.
    if (op.submit_ns != 0 && drain_ns > op.submit_ns) {
      metrics.queue_wait->Record(drain_ns - op.submit_ns);
    }
    if (op.graph_index != 1 && op.graph_index != 2) {
      ++invalid;
      ++stats_.edits_failed;
      metrics.edits_failed->Inc();
      continue;
    }
    auto [it, inserted] = last_op[op.graph_index == 2].try_emplace(
        PairKey(op.from, op.to), batch_scratch_.size());
    if (inserted) {
      batch_scratch_.push_back(op);
    } else {
      batch_scratch_[it->second].insert = op.insert;
    }
  }
  const size_t batch_coalesced = batch.size() - invalid - batch_scratch_.size();
  stats_.edits_coalesced += batch_coalesced;
  metrics.edits_coalesced->Inc(batch_coalesced);

  size_t applied = 0;
  Timer apply_timer;
  const uint64_t apply_start_ns = obs::MonotonicNanos();
  for (const EditOp& op : batch_scratch_) {
    const DynamicGraph& target = op.graph_index == 2 ? inc_->g2() : inc_->g1();
    const bool present = op.from < target.NumNodes() &&
                         op.to < target.NumNodes() &&
                         target.HasEdge(op.from, op.to);
    if (op.insert == present) {  // net no-op against the current graph
      ++stats_.edits_coalesced;
      metrics.edits_coalesced->Inc();
      continue;
    }
    const Status status =
        op.insert ? inc_->InsertEdge(op.graph_index, op.from, op.to)
                  : inc_->RemoveEdge(op.graph_index, op.from, op.to);
    if (status.ok()) {
      ++applied;
    } else {
      ++stats_.edits_failed;
      metrics.edits_failed->Inc();
    }
  }
  metrics.apply_latency->Record(obs::MonotonicNanos() - apply_start_ns);
  metrics.edits_applied->Inc(applied);
  stats_.total_apply_seconds += apply_timer.Seconds();
  stats_.edits_applied += applied;
  edits_since_publish_ += applied;
  edits_since_snapshot_ += applied;
  if (max_lsn > applied_lsn_) applied_lsn_ = max_lsn;
  return applied;
}

void RefreshDriver::PublishLocked() {
  FSIM_FAILPOINT_VOID("serve.publish");
  FSIM_TRACE_SPAN("refresh.publish");
  const uint64_t publish_start_ns = obs::MonotonicNanos();
  Timer timer;
  SnapshotMeta meta;
  meta.version = store_->NextVersion();
  meta.edits_applied = stats_.edits_applied;
  meta.converged = inc_->converged();
  FSimScores scores = inc_->Snapshot();
  meta.build_seconds = timer.Seconds();  // + the cache build, in the ctor
  auto snapshot = std::make_shared<const FSimSnapshot>(
      FreezeScores(std::move(scores)), policy_.topk_cache_k, meta);
  store_->Publish(std::move(snapshot));
  stats_.last_publish_seconds = timer.Seconds();
  ++stats_.publishes;
  edits_since_publish_ = 0;
  last_publish_time_ = std::chrono::steady_clock::now();
  const uint64_t now_ns = obs::MonotonicNanos();
  RefreshMetrics::Get().publish_latency->Record(now_ns - publish_start_ns);
  last_publish_ns_.store(now_ns, std::memory_order_relaxed);
}

Status RefreshDriver::PersistSnapshotLocked() {
  FSIM_TRACE_SPAN("refresh.persist");
  const uint64_t persist_start_ns = obs::MonotonicNanos();
  Timer timer;
  const FSimScores scores = inc_->Snapshot();
  const Graph g1 = inc_->MaterializeG1();
  const Graph g2 = inc_->MaterializeG2();
  FSIM_RETURN_NOT_OK(
      PersistSnapshot(durability_.dir, applied_lsn_, g1, g2, scores));
  ++stats_.snapshot_persists;
  stats_.total_persist_seconds += timer.Seconds();
  RefreshMetrics::Get().persist_latency->Record(obs::MonotonicNanos() -
                                                persist_start_ns);
  persisted_lsn_ = applied_lsn_;
  edits_since_snapshot_ = 0;
  // Retention: rotate so the closed segment becomes coverable, keep the
  // newest snapshots, and drop WAL segments the oldest retained snapshot
  // already covers.
  FSIM_RETURN_NOT_OK(wal_->Rotate());
  FSIM_ASSIGN_OR_RETURN(
      size_t snapshots_removed,
      RemoveObsoleteSnapshots(durability_.dir, durability_.keep_snapshots));
  (void)snapshots_removed;
  FSIM_ASSIGN_OR_RETURN(uint64_t oldest, OldestSnapshotLsn(durability_.dir));
  if (oldest > 0) {
    FSIM_ASSIGN_OR_RETURN(size_t segments_removed,
                          RemoveObsoleteWalSegments(durability_.dir, oldest));
    (void)segments_removed;
  }
  return Status::OK();
}

Result<size_t> RefreshDriver::DrainApplyLocked(bool force_publish) {
  FSIM_FAILPOINT("serve.refresh.apply");
  drain_scratch_.clear();
  queue_.Drain(&drain_scratch_);
  size_t applied = 0;
  if (!drain_scratch_.empty()) {
    applied = ApplyBatchLocked(drain_scratch_);
  }
  // Publishing is only ever due when something changed since the last
  // publish (max_edits_behind == 0 behaves like 1, not like "republish
  // every poll tick").
  bool due = edits_since_publish_ > 0 &&
             edits_since_publish_ >= policy_.max_edits_behind;
  if (!due && edits_since_publish_ > 0) {
    if (force_publish) {
      due = true;
    } else {
      const double behind = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                last_publish_time_)
                                .count();
      due = behind >= policy_.max_seconds_behind;
    }
  }
  if (due) PublishLocked();
  if (wal_ != nullptr && durability_.snapshot_every_edits > 0 &&
      edits_since_snapshot_ >= durability_.snapshot_every_edits) {
    const Status persisted = PersistSnapshotLocked();
    if (!persisted.ok()) {
      // The WAL already holds every acknowledged edit; a failed snapshot
      // only lengthens the next replay. Count it and retry at the next
      // cadence hit.
      ++stats_.snapshot_persist_failures;
    }
  }
  return applied;
}

Result<size_t> RefreshDriver::DrainApply(bool force_publish) {
  if (!ready()) {
    return Status::Internal("refresh engine is not initialized");
  }
  std::lock_guard<std::timed_mutex> lock(apply_mu_);
  return DrainApplyLocked(force_publish);
}

Status RefreshDriver::Flush() {
  return FlushWithin(std::chrono::milliseconds(static_cast<int64_t>(
      policy_.flush_timeout_seconds * 1e3)));
}

Status RefreshDriver::FlushWithin(std::chrono::milliseconds timeout) {
  FSIM_FAILPOINT("serve.flush");
  const bool bounded = timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  {
    std::unique_lock<std::mutex> lock(init_mu_);
    const auto initialized = [this] {
      return init_done_ || stop_.load(std::memory_order_relaxed);
    };
    if (bounded) {
      if (!init_cv_.wait_until(lock, deadline, initialized)) {
        return Status::DeadlineExceeded(
            "refresh engine did not become ready within the flush budget");
      }
    } else {
      init_cv_.wait(lock, initialized);
    }
    if (!init_done_) {
      return init_status_.ok()
                 ? Status::Internal("refresh driver stopped before Init")
                 : init_status_;
    }
  }
  if (bounded) {
    std::unique_lock<std::timed_mutex> lock(apply_mu_, std::defer_lock);
    if (!lock.try_lock_until(deadline)) {
      return Status::DeadlineExceeded(
          "refresh engine is busy past the flush budget (a solve or "
          "persist holds the apply lock)");
    }
    return DrainApplyLocked(/*force_publish=*/true).status();
  }
  FSIM_ASSIGN_OR_RETURN(size_t applied, DrainApply(/*force_publish=*/true));
  (void)applied;
  return Status::OK();
}

void RefreshDriver::Start() {
  if (thread_.joinable()) return;
  stop_.store(false);
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    loop_done_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void RefreshDriver::RunLoop() {
  // Watchdog: a failed initial solve (resource pressure, injected fault)
  // is retried with exponential backoff instead of silently ending
  // background refresh. Queries keep answering from whatever snapshot is
  // published (a warm start or recovery snapshot) the whole time.
  // Stop()-interruptible backoff sleep (a queue wait would return
  // immediately whenever edits are pending, turning backoff into a spin).
  const auto backoff_sleep = [this](double seconds) {
    std::unique_lock<std::mutex> lock(loop_mu_);
    loop_cv_.wait_for(
        lock,
        std::chrono::milliseconds(
            std::max<int64_t>(1, static_cast<int64_t>(seconds * 1e3))),
        [this] { return stop_.load(); });
  };
  double backoff = std::max(policy_.retry_backoff_seconds, 1e-3);
  while (!stop_.load()) {
    if (Init().ok()) break;
    init_retries_.fetch_add(1);
    backoff_sleep(backoff);
    backoff = std::min(backoff * 2, policy_.retry_backoff_max_seconds);
  }
  if (ready()) {
    const auto poll = std::chrono::milliseconds(std::max<int64_t>(
        1, static_cast<int64_t>(policy_.poll_seconds * 1e3)));
    backoff = std::max(policy_.retry_backoff_seconds, 1e-3);
    while (!stop_.load()) {
      queue_.WaitNonEmpty(poll);
      if (stop_.load()) break;
      const auto applied = DrainApply(/*force_publish=*/false);
      if (applied.ok()) {
        backoff = std::max(policy_.retry_backoff_seconds, 1e-3);
      } else {
        // Failed round: edits stay queued (the failpoint/error fires
        // before the drain), so back off and retry rather than spin.
        refresh_failures_.fetch_add(1);
        backoff_sleep(backoff);
        backoff = std::min(backoff * 2, policy_.retry_backoff_max_seconds);
      }
    }
    // Final drain so Stop() leaves the published snapshot current.
    (void)DrainApply(/*force_publish=*/true);
  }
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    loop_done_ = true;
  }
  loop_cv_.notify_all();
}

Status RefreshDriver::Stop(std::chrono::milliseconds timeout) {
  stop_.store(true);
  queue_.Wake();
  init_cv_.notify_all();  // release Flush waiters parked on a failing Init
  loop_cv_.notify_all();  // cut any watchdog backoff sleep short
  if (!thread_.joinable()) return Status::OK();
  if (timeout.count() > 0) {
    std::unique_lock<std::mutex> lock(loop_mu_);
    if (!loop_cv_.wait_for(lock, timeout, [this] { return loop_done_; })) {
      return Status::DeadlineExceeded(
          "refresh loop is still draining past the stop budget (it keeps "
          "running; call Stop again or let the destructor wait)");
    }
  }
  thread_.join();
  return Status::OK();
}

RefreshDriver::Stats RefreshDriver::stats() const {
  std::lock_guard<std::timed_mutex> lock(apply_mu_);
  Stats stats = stats_;
  stats.edits_coalesced += queue_coalesced_.load();
  stats.edits_submitted = submitted_.load();
  stats.edits_shed = shed_.load();
  stats.wal_failures = wal_failures_.load();
  stats.init_retries = init_retries_.load();
  stats.refresh_failures = refresh_failures_.load();
  stats.applied_lsn = applied_lsn_;
  stats.persisted_lsn = persisted_lsn_;
  stats.durable_lsn = wal_ != nullptr ? wal_->durable_lsn() : 0;
  stats.wal_pending = wal_ != nullptr ? wal_->pending() : 0;
  const uint64_t publish_ns = last_publish_ns_.load(std::memory_order_relaxed);
  stats.publish_age_seconds =
      publish_ns != 0
          ? static_cast<double>(obs::MonotonicNanos() - publish_ns) * 1e-9
          : 0.0;
  stats.edits_behind = edits_since_publish_;
  stats.seconds_behind =
      inc_ != nullptr
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          last_publish_time_)
                .count()
          : 0.0;
  return stats;
}

Graph RefreshDriver::MaterializeG1() const {
  std::lock_guard<std::timed_mutex> lock(apply_mu_);
  FSIM_CHECK(inc_ != nullptr);
  return inc_->MaterializeG1();
}

Graph RefreshDriver::MaterializeG2() const {
  std::lock_guard<std::timed_mutex> lock(apply_mu_);
  FSIM_CHECK(inc_ != nullptr);
  return inc_->MaterializeG2();
}

}  // namespace fsim
