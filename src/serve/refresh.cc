#include "serve/refresh.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/timer.h"

namespace fsim {

void EditQueue::Push(const EditOp& op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.push_back(op);
  }
  cv_.notify_all();
}

size_t EditQueue::Drain(std::vector<EditOp>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = ops_.size();
  out->insert(out->end(), ops_.begin(), ops_.end());
  ops_.clear();
  return n;
}

size_t EditQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.size();
}

bool EditQueue::WaitNonEmpty(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [this] { return !ops_.empty(); });
  return !ops_.empty();
}

RefreshDriver::RefreshDriver(Graph g1, Graph g2, FSimConfig config,
                             IncrementalOptions inc_options,
                             RefreshPolicy policy, SnapshotStore* store)
    : g1_(std::move(g1)),
      g2_(std::move(g2)),
      config_(std::move(config)),
      inc_options_(inc_options),
      policy_(policy),
      store_(store) {
  FSIM_CHECK(store_ != nullptr);
}

RefreshDriver::~RefreshDriver() { Stop(); }

Status RefreshDriver::Init() {
  {
    std::lock_guard<std::mutex> lock(init_mu_);
    if (init_done_) return init_status_;
  }
  Status status;
  {
    std::lock_guard<std::mutex> lock(apply_mu_);
    auto inc = IncrementalFSim::Create(g1_, g2_, config_, inc_options_);
    if (inc.ok()) {
      inc_ = std::make_unique<IncrementalFSim>(std::move(inc).ValueOrDie());
      PublishLocked();
    } else {
      status = inc.status();
    }
  }
  {
    std::lock_guard<std::mutex> lock(init_mu_);
    init_done_ = true;
    init_status_ = status;
  }
  init_cv_.notify_all();
  return status;
}

bool RefreshDriver::ready() const {
  std::lock_guard<std::mutex> lock(init_mu_);
  return init_done_ && init_status_.ok();
}

Status RefreshDriver::init_status() const {
  std::lock_guard<std::mutex> lock(init_mu_);
  return init_status_;
}

void RefreshDriver::Submit(const EditOp& op) {
  submitted_.fetch_add(1);
  queue_.Push(op);
}

size_t RefreshDriver::ApplyBatchLocked(const std::vector<EditOp>& batch) {
  // Coalesce the burst to one net op per (graph, from, to): later
  // submissions win, order of first appearance is kept (distinct-edge edits
  // commute at the graph level, so this preserves the batch's net effect).
  batch_scratch_.clear();
  std::unordered_map<uint64_t, size_t> last_op[2];
  size_t invalid = 0;
  for (const EditOp& op : batch) {
    if (op.graph_index != 1 && op.graph_index != 2) {
      ++invalid;
      ++stats_.edits_failed;
      continue;
    }
    auto [it, inserted] = last_op[op.graph_index == 2].try_emplace(
        PairKey(op.from, op.to), batch_scratch_.size());
    if (inserted) {
      batch_scratch_.push_back(op);
    } else {
      batch_scratch_[it->second].insert = op.insert;
    }
  }
  stats_.edits_coalesced += batch.size() - invalid - batch_scratch_.size();

  size_t applied = 0;
  Timer apply_timer;
  for (const EditOp& op : batch_scratch_) {
    const DynamicGraph& target = op.graph_index == 2 ? inc_->g2() : inc_->g1();
    const bool present = op.from < target.NumNodes() &&
                         op.to < target.NumNodes() &&
                         target.HasEdge(op.from, op.to);
    if (op.insert == present) {  // net no-op against the current graph
      ++stats_.edits_coalesced;
      continue;
    }
    const Status status =
        op.insert ? inc_->InsertEdge(op.graph_index, op.from, op.to)
                  : inc_->RemoveEdge(op.graph_index, op.from, op.to);
    if (status.ok()) {
      ++applied;
    } else {
      ++stats_.edits_failed;
    }
  }
  stats_.total_apply_seconds += apply_timer.Seconds();
  stats_.edits_applied += applied;
  edits_since_publish_ += applied;
  return applied;
}

void RefreshDriver::PublishLocked() {
  Timer timer;
  SnapshotMeta meta;
  meta.version = store_->NextVersion();
  meta.edits_applied = stats_.edits_applied;
  meta.converged = inc_->converged();
  FSimScores scores = inc_->Snapshot();
  meta.build_seconds = timer.Seconds();  // + the cache build, in the ctor
  auto snapshot = std::make_shared<const FSimSnapshot>(
      FreezeScores(std::move(scores)), policy_.topk_cache_k, meta);
  store_->Publish(std::move(snapshot));
  stats_.last_publish_seconds = timer.Seconds();
  ++stats_.publishes;
  edits_since_publish_ = 0;
  last_publish_time_ = std::chrono::steady_clock::now();
}

Result<size_t> RefreshDriver::DrainApply(bool force_publish) {
  if (!ready()) {
    return Status::Internal("refresh engine is not initialized");
  }
  std::lock_guard<std::mutex> lock(apply_mu_);
  drain_scratch_.clear();
  queue_.Drain(&drain_scratch_);
  size_t applied = 0;
  if (!drain_scratch_.empty()) {
    applied = ApplyBatchLocked(drain_scratch_);
  }
  // Publishing is only ever due when something changed since the last
  // publish (max_edits_behind == 0 behaves like 1, not like "republish
  // every poll tick").
  bool due = edits_since_publish_ > 0 &&
             edits_since_publish_ >= policy_.max_edits_behind;
  if (!due && edits_since_publish_ > 0) {
    if (force_publish) {
      due = true;
    } else {
      const double behind = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                last_publish_time_)
                                .count();
      due = behind >= policy_.max_seconds_behind;
    }
  }
  if (due) PublishLocked();
  return applied;
}

Status RefreshDriver::Flush() {
  {
    std::unique_lock<std::mutex> lock(init_mu_);
    init_cv_.wait(lock, [this] { return init_done_; });
    if (!init_status_.ok()) return init_status_;
  }
  FSIM_ASSIGN_OR_RETURN(size_t applied, DrainApply(/*force_publish=*/true));
  (void)applied;
  return Status::OK();
}

void RefreshDriver::Start() {
  if (thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] { RunLoop(); });
}

void RefreshDriver::RunLoop() {
  if (!Init().ok()) return;
  const auto poll = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(policy_.poll_seconds * 1e3)));
  while (!stop_.load()) {
    queue_.WaitNonEmpty(poll);
    if (stop_.load()) break;
    (void)DrainApply(/*force_publish=*/false);
  }
  // Final drain so Stop() leaves the published snapshot current.
  (void)DrainApply(/*force_publish=*/true);
}

void RefreshDriver::Stop() {
  stop_.store(true);
  queue_.Wake();
  if (thread_.joinable()) thread_.join();
}

RefreshDriver::Stats RefreshDriver::stats() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  Stats stats = stats_;
  stats.edits_submitted = submitted_.load();
  return stats;
}

Graph RefreshDriver::MaterializeG1() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  FSIM_CHECK(inc_ != nullptr);
  return inc_->MaterializeG1();
}

Graph RefreshDriver::MaterializeG2() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  FSIM_CHECK(inc_ != nullptr);
  return inc_->MaterializeG2();
}

}  // namespace fsim
