#include "label/label_similarity.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace fsim {

const char* LabelSimKindName(LabelSimKind kind) {
  switch (kind) {
    case LabelSimKind::kIndicator:
      return "L_I";
    case LabelSimKind::kEditDistance:
      return "L_E";
    case LabelSimKind::kJaroWinkler:
      return "L_J";
  }
  return "?";
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      size_t tmp = row[i];
      size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
      prev_diag = tmp;
    }
  }
  return row[n];
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double denom = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) / denom;
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a == b) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;

  std::vector<char> a_matched(la, 0);
  std::vector<char> b_matched(lb, 0);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  constexpr double kPrefixScale = 0.1;
  double jw = jaro + static_cast<double>(prefix) * kPrefixScale * (1.0 - jaro);
  // Guarantee L(a,b) = 1 only for identical strings (well-definedness).
  if (a != b && jw >= 1.0) jw = 1.0 - 1e-9;
  return jw;
}

double StringSimilarity(LabelSimKind kind, std::string_view a,
                        std::string_view b) {
  switch (kind) {
    case LabelSimKind::kIndicator:
      return a == b ? 1.0 : 0.0;
    case LabelSimKind::kEditDistance:
      return NormalizedEditSimilarity(a, b);
    case LabelSimKind::kJaroWinkler:
      return JaroWinklerSimilarity(a, b);
  }
  return 0.0;
}

LabelSimilarityCache::LabelSimilarityCache(const LabelDict& dict,
                                           LabelSimKind kind)
    : kind_(kind), n_(dict.size()) {
  if (kind_ == LabelSimKind::kIndicator) return;
  // A dense matrix over the dictionary keeps the per-pair lookup a single
  // load. Guard against accidentally quadratic blowup on huge dictionaries.
  FSIM_CHECK(n_ <= 16384) << "LabelSimilarityCache: dictionary too large for "
                             "dense memoization ("
                          << n_ << " labels); use kIndicator";
  matrix_.resize(n_ * n_);
  for (size_t i = 0; i < n_; ++i) {
    matrix_[i * n_ + i] = 1.0f;
    for (size_t j = i + 1; j < n_; ++j) {
      float s = static_cast<float>(
          StringSimilarity(kind_, dict.Name(static_cast<LabelId>(i)),
                           dict.Name(static_cast<LabelId>(j))));
      matrix_[i * n_ + j] = s;
      matrix_[j * n_ + i] = s;
    }
  }
}

}  // namespace fsim
