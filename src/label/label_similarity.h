// Label similarity functions L(·) (§3.2/§3.3): the indicator function L_I,
// normalized edit distance L_E and Jaro-Winkler L_J. All three satisfy the
// well-definedness requirement L(a,b) = 1 ⟺ a = b on interned (distinct)
// label strings.
#ifndef FSIM_LABEL_LABEL_SIMILARITY_H_
#define FSIM_LABEL_LABEL_SIMILARITY_H_

#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// Which string-similarity function realizes L(·).
enum class LabelSimKind {
  kIndicator,     // L_I: 1 if equal, else 0
  kEditDistance,  // L_E: 1 - lev(a,b)/max(|a|,|b|)
  kJaroWinkler,   // L_J
};

const char* LabelSimKindName(LabelSimKind kind);

/// Levenshtein distance (unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// L_E(a,b) = 1 - lev(a,b) / max(|a|,|b|); 1 for two empty strings.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with the standard prefix scale p=0.1 (prefix length <= 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Dispatches to the function selected by `kind`.
double StringSimilarity(LabelSimKind kind, std::string_view a,
                        std::string_view b);

/// Memoized L(·) over a (shared) label dictionary: a dense |Σ|x|Σ| float
/// matrix, computed once. For kIndicator no matrix is materialized (the
/// comparison is a plain id equality).
class LabelSimilarityCache {
 public:
  /// `dict` must be the dictionary shared by both graphs of a computation.
  LabelSimilarityCache(const LabelDict& dict, LabelSimKind kind);

  double Sim(LabelId a, LabelId b) const {
    if (kind_ == LabelSimKind::kIndicator) return a == b ? 1.0 : 0.0;
    FSIM_DCHECK(a < n_ && b < n_);
    return matrix_[static_cast<size_t>(a) * n_ + b];
  }

  /// The label-constrained mapping test (Remark 2): can x be mapped to y
  /// under threshold theta? theta <= 0 admits every pair.
  bool Compatible(LabelId a, LabelId b, double theta) const {
    return theta <= 0.0 || Sim(a, b) >= theta;
  }

  LabelSimKind kind() const { return kind_; }

 private:
  LabelSimKind kind_;
  size_t n_ = 0;
  std::vector<float> matrix_;
};

}  // namespace fsim

#endif  // FSIM_LABEL_LABEL_SIMILARITY_H_
