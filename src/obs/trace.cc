#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

namespace fsim {
namespace obs {

namespace {

/// One thread's ring. Single writer (the owning thread), many readers
/// (SnapshotTrace): the writer publishes each event with a release store
/// of `next`; readers acquire-load `next` and only read below it. Rings
/// are created on a thread's first armed span and live for the process —
/// a thread that exits leaves its events dumpable.
struct TraceRing {
  explicit TraceRing(int tid_in)
      : tid(tid_in), events(kTraceRingCapacity) {}

  int tid;
  std::atomic<uint64_t> next{0};  // total events ever written
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mu;
  // guarded by mu: the ring list (rings themselves are lock-free).
  std::vector<std::unique_ptr<TraceRing>> rings;
  int next_tid = 0;
  std::atomic<uint64_t> epoch_ns{0};
};

TraceState& State() {
  static TraceState* state = new TraceState();  // fsim-lint: allow(naked-new)
  return *state;
}

TraceRing& ThisThreadRing() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.rings.push_back(std::make_unique<TraceRing>(state.next_tid++));
    ring = state.rings.back().get();
  }
  return *ring;
}

}  // namespace

namespace internal {

void RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns,
                uint64_t arg, bool has_arg) {
  TraceRing& ring = ThisThreadRing();
  const uint64_t n = ring.next.load(std::memory_order_relaxed);
  TraceEvent& slot = ring.events[n % kTraceRingCapacity];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.arg = arg;
  slot.has_arg = has_arg;
  ring.next.store(n + 1, std::memory_order_release);
}

}  // namespace internal

void ArmTracing() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& ring : state.rings) {
    ring->next.store(0, std::memory_order_relaxed);
  }
  state.epoch_ns.store(MonotonicNanos(), std::memory_order_relaxed);
  internal::g_trace_armed.store(true, std::memory_order_release);
}

void DisarmTracing() {
  internal::g_trace_armed.store(false, std::memory_order_release);
}

uint64_t TraceEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const auto& ring : state.rings) {
    total += std::min<uint64_t>(ring->next.load(std::memory_order_acquire),
                                kTraceRingCapacity);
  }
  return total;
}

uint64_t TraceDroppedCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t dropped = 0;
  for (const auto& ring : state.rings) {
    const uint64_t n = ring->next.load(std::memory_order_acquire);
    if (n > kTraceRingCapacity) dropped += n - kTraceRingCapacity;
  }
  return dropped;
}

std::vector<ThreadTrace> SnapshotTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const uint64_t epoch = state.epoch_ns.load(std::memory_order_relaxed);
  std::vector<ThreadTrace> out;
  for (const auto& ring : state.rings) {
    const uint64_t n = ring->next.load(std::memory_order_acquire);
    const uint64_t held = std::min<uint64_t>(n, kTraceRingCapacity);
    if (held == 0) continue;
    ThreadTrace thread_trace;
    thread_trace.tid = ring->tid;
    thread_trace.events.reserve(held);
    for (uint64_t i = n - held; i < n; ++i) {
      TraceEvent event = ring->events[i % kTraceRingCapacity];
      // Spans from before the current arm epoch (stale ring tails are
      // cleared on arm, but a span can straddle a re-arm) clamp to 0.
      event.start_ns = event.start_ns > epoch ? event.start_ns - epoch : 0;
      thread_trace.events.push_back(event);
    }
    std::sort(thread_trace.events.begin(), thread_trace.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.start_ns < b.start_ns;
              });
    out.push_back(std::move(thread_trace));
  }
  std::sort(out.begin(), out.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.tid < b.tid;
            });
  return out;
}

std::string RenderChromeTrace() {
  const std::vector<ThreadTrace> threads = SnapshotTrace();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const ThreadTrace& thread_trace : threads) {
    for (const TraceEvent& event : thread_trace.events) {
      if (!first) out += ',';
      first = false;
      // Chrome's ts/dur are microseconds; keep ns precision as decimals.
      std::snprintf(buf, sizeof(buf),
                    "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                    event.name, static_cast<double>(event.start_ns) / 1e3,
                    static_cast<double>(event.dur_ns) / 1e3,
                    thread_trace.tid);
      out += buf;
      if (event.has_arg) {
        std::snprintf(buf, sizeof(buf), ",\"args\":{\"v\":%llu}",
                      static_cast<unsigned long long>(event.arg));
        out += buf;
      }
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = RenderChromeTrace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace fsim
