// Phase tracing — RAII spans recorded into per-thread ring buffers and
// dumped as Chrome trace_event JSON (chrome://tracing, Perfetto). The
// instrumented phases are the engine iteration structure (init, per-iter
// frontier build / sweep / commit), incremental propagate waves, scheduler
// dispatch regions and the serve path; `fsim_cli --trace-out t.json`
// arms tracing around a solve and writes the dump.
//
//   { FSIM_TRACE_SPAN("iterate"); ... }          // unnamed scope span
//   { FSIM_TRACE_SPAN_ARG("wave", wave_size); ... }
//
// Disarmed (the default), a span costs one relaxed atomic load and two
// register writes — cheap enough to compile into release builds
// unconditionally; bench_fsim asserts the end-to-end cost stays under 2%
// of the yeast dp iterate. Armed, the span dtor appends one fixed-size
// event to this thread's ring (capacity kTraceRingCapacity, oldest events
// overwritten; no allocation after the ring's first use).
//
// Dumping is meant for quiesced processes (disarm, join workers, then
// dump): the reader only trusts events published before its acquire-load
// of each ring's write index, and a ring being actively overwritten can
// tear events recorded kTraceRingCapacity writes earlier.
#ifndef FSIM_OBS_TRACE_H_
#define FSIM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace fsim {
namespace obs {

/// Events one thread ring holds before overwriting (16384 × 40 B ≈ 640
/// KiB per recording thread, allocated on that thread's first armed span).
inline constexpr size_t kTraceRingCapacity = 16384;

namespace internal {
/// The global armed flag — read inline by every span constructor.
inline std::atomic<bool> g_trace_armed{false};

/// Appends one completed span to the calling thread's ring.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns,
                uint64_t arg, bool has_arg);
}  // namespace internal

/// One recorded span. `name` must be a string literal (the ring stores
/// the pointer, not a copy).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  // relative to the ArmTracing() epoch
  uint64_t dur_ns = 0;
  uint64_t arg = 0;
  bool has_arg = false;
};

/// All events of one recording thread, sorted by start_ns.
struct ThreadTrace {
  int tid = 0;
  std::vector<TraceEvent> events;
};

/// True while spans are being recorded.
inline bool TraceArmed() {
  return internal::g_trace_armed.load(std::memory_order_relaxed);
}

/// Starts recording: clears every ring, resets the timestamp epoch, arms.
void ArmTracing();

/// Stops recording. Spans already in flight still record (they captured
/// the armed decision at construction).
void DisarmTracing();

/// Total events currently held across all rings (post-overwrite), plus
/// how many were overwritten. For tests and the bench overhead guard.
uint64_t TraceEventCount();
uint64_t TraceDroppedCount();

/// Snapshot of every ring, per thread, events sorted by start_ns.
std::vector<ThreadTrace> SnapshotTrace();

/// The snapshot rendered as Chrome trace_event JSON: one complete ("X")
/// event per span, ts/dur in microseconds, sorted by ts within each tid.
std::string RenderChromeTrace();

/// RenderChromeTrace written to `path`.
Status WriteChromeTrace(const std::string& path);

/// RAII span. Construction samples the clock only when armed; the
/// destructor records into this thread's ring. Use through the macros.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, 0, false) {}
  TraceSpan(const char* name, uint64_t arg) : TraceSpan(name, arg, true) {}
  ~TraceSpan() { End(); }

  /// Records the span now instead of at scope exit (for phases whose
  /// results must escape the scope). Idempotent.
  void End() {
    if (start_ns_ != 0) {
      internal::RecordSpan(name_, start_ns_, MonotonicNanos() - start_ns_,
                           arg_, has_arg_);
      start_ns_ = 0;
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSpan(const char* name, uint64_t arg, bool has_arg)
      : name_(name),
        // start_ns_ doubles as the armed flag: 0 = disarmed at entry.
        // MonotonicNanos() is never 0 on a running system (steady_clock
        // epoch is boot).
        start_ns_(TraceArmed() ? MonotonicNanos() : 0),
        arg_(arg),
        has_arg_(has_arg) {}

  const char* name_;
  uint64_t start_ns_;
  uint64_t arg_;
  bool has_arg_;
};

}  // namespace obs
}  // namespace fsim

#define FSIM_TRACE_CONCAT2(a, b) a##b
#define FSIM_TRACE_CONCAT(a, b) FSIM_TRACE_CONCAT2(a, b)

/// Scope span named by a string literal.
#define FSIM_TRACE_SPAN(name) \
  ::fsim::obs::TraceSpan FSIM_TRACE_CONCAT(fsim_trace_span_, __LINE__)(name)

/// Scope span with one numeric argument (iteration number, wave size).
#define FSIM_TRACE_SPAN_ARG(name, arg)                                     \
  ::fsim::obs::TraceSpan FSIM_TRACE_CONCAT(fsim_trace_span_, __LINE__)(    \
      name, static_cast<uint64_t>(arg))

#endif  // FSIM_OBS_TRACE_H_
