// Process-wide metrics registry — the one snapshot mechanism behind the
// METRICS serve verb, the expanded STATS quantiles and `fsim_cli
// --metrics`. Three instrument kinds:
//
//   Counter    monotonic uint64, sharded per thread (kShards cache-line-
//              padded slots, relaxed fetch_add) and summed on snapshot.
//   Gauge      one double, last-write-wins; or a registered callback
//              evaluated at snapshot time (queue depth, publish age,
//              wal_pending — values that only exist "now").
//   Histogram  log2-bucketed uint64 distribution (bucket i holds values of
//              bit_width i, so the quantile estimate is exact to one
//              bucket, i.e. a factor of 2), sharded like counters, with
//              per-shard sum and max. Time histograms record nanoseconds
//              and are exposed in seconds.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a registry mutex
// and may allocate — do it once, at construction or via a function-local
// static. Recording through the returned handle is lock-free and
// allocation-free (relaxed atomics on the caller's shard), so handles are
// safe inside ParallelFor* bodies and the serve hot path. The fsim-lint
// `metrics-hot` rule enforces the split: no registry lookups inside
// parallel lambdas. docs/observability.md has the full API contract and
// cardinality rules.
#ifndef FSIM_OBS_METRICS_H_
#define FSIM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsim {
namespace obs {

/// Per-thread shard count. More shards cost memory (each histogram shard
/// is ~half a KiB); fewer cost contention when many workers record into
/// one instrument. 16 covers the pool sizes the scheduler targets.
inline constexpr size_t kShards = 16;

/// Log2 bucket count: bucket i counts values with std::bit_width(v) == i,
/// so i ranges over [0, 64] (bucket 0 is exactly the value 0).
inline constexpr size_t kHistogramBuckets = 65;

/// This thread's shard slot, assigned round-robin on first use.
size_t ShardIndex();

/// Steady-clock nanoseconds — the raw unit every time histogram records.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};  // ordering: relaxed adds, merged on read
};

/// Monotonic counter. Inc is wait-free and allocation-free. Usually
/// obtained from a Registry; standalone construction is for tests.
class Counter {
 public:
  Counter() = default;

  void Inc(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent increments may or may not be included.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const CounterShard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Tests only — racy against concurrent Inc by design.
  void Reset() {
    for (CounterShard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<CounterShard, kShards> shards_;
};

/// Last-write-wins double gauge.
class Gauge {
 public:
  Gauge() = default;

  void Set(double value) {
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }

  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        observed, std::bit_cast<uint64_t>(std::bit_cast<double>(observed) +
                                          delta),
        std::memory_order_relaxed)) {
    }
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  // ordering: relaxed — a gauge is a single self-consistent double; readers
  // tolerate any published value.
  std::atomic<uint64_t> bits_{0};
};

/// Merged view of one histogram at one instant.
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> counts{};
  uint64_t count = 0;  // total observations
  uint64_t sum = 0;    // sum of raw values
  uint64_t max = 0;    // largest raw value observed

  /// Upper bound of bucket `i` in raw units: the largest value v with
  /// bit_width(v) == i.
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  /// Quantile estimate in raw units, linearly interpolated inside the
  /// containing bucket — always within that bucket's bounds, so the error
  /// is at most one bucket width (a factor of 2). q in [0, 1]; returns 0
  /// for an empty histogram and never exceeds the observed max.
  double Quantile(double q) const;

  /// Bucket-wise difference `after - before` of two snapshots of the same
  /// histogram (for interval measurements, e.g. one bench phase).
  static HistogramSnapshot Delta(const HistogramSnapshot& after,
                                 const HistogramSnapshot& before);
};

/// Log2-bucketed histogram of uint64 samples. Record is wait-free and
/// allocation-free apart from one CAS loop maintaining the shard max.
class Histogram {
 public:
  /// How raw values translate to exposition units: nanosecond histograms
  /// are rendered in seconds, count histograms verbatim.
  enum class Unit { kNanoseconds, kCount };

  explicit Histogram(Unit unit) : unit_(unit) {}

  void Record(uint64_t value) {
    HistogramShard& shard = shards_[ShardIndex()];
    const size_t bucket = static_cast<size_t>(std::bit_width(value));
    shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t observed = shard.max.load(std::memory_order_relaxed);
    while (observed < value &&
           !shard.max.compare_exchange_weak(observed, value,
                                            std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

  Unit unit() const { return unit_; }

 private:
  struct alignas(64) HistogramShard {
    // ordering: all relaxed — Record touches one shard; Snapshot merges all
    // shards and tolerates torn cross-field reads (count/sum may disagree by
    // in-flight records, asserted only to stay self-consistent per field).
    std::array<std::atomic<uint64_t>, kHistogramBuckets> counts{};
    std::atomic<uint64_t> sum{0};  // ordering: relaxed, see counts above
    std::atomic<uint64_t> max{0};  // ordering: relaxed CAS-max loop
  };

  std::array<HistogramShard, kShards> shards_;
  Unit unit_;
};

/// RAII nanosecond timer recording into a histogram on destruction. The
/// handle may be null (recording skipped) so call sites need no branches.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram == nullptr ? 0 : MonotonicNanos()) {}
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicNanos() - start_ns_);
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

/// Name + one optional label pair identifying an instrument. Label keys
/// and values must be a closed, code-controlled set (verb names, site
/// names) — never request-derived strings; see docs/observability.md.
struct MetricKey {
  std::string family;
  std::string label_key;    // empty = unlabeled
  std::string label_value;  // empty = unlabeled

  bool operator<(const MetricKey& other) const {
    if (family != other.family) return family < other.family;
    if (label_key != other.label_key) return label_key < other.label_key;
    return label_value < other.label_value;
  }
};

/// One rendered/enumerated histogram (STATS FULL, bench reports).
struct HistogramEntry {
  MetricKey key;
  Histogram::Unit unit = Histogram::Unit::kCount;
  HistogramSnapshot snapshot;
};

/// The instrument registry. `Default()` is the process-wide instance all
/// production instrumentation uses; tests may construct private registries
/// for isolation. Instruments live as long as the registry — handles never
/// dangle. Repeated Get* with the same key returns the same handle, so
/// concurrent registration is safe and idempotent.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Default();

  /// Registration: mutex + possible allocation. NOT for hot paths —
  /// resolve once and keep the handle.
  Counter* GetCounter(std::string_view family, std::string_view help,
                      std::string_view label_key = {},
                      std::string_view label_value = {});
  Gauge* GetGauge(std::string_view family, std::string_view help,
                  std::string_view label_key = {},
                  std::string_view label_value = {});
  Histogram* GetHistogram(std::string_view family, std::string_view help,
                          Histogram::Unit unit,
                          std::string_view label_key = {},
                          std::string_view label_value = {});

  /// Gauge whose value is produced by `fn` at snapshot time (publish age,
  /// queue depth). `owner` scopes the registration: re-registering the
  /// same key replaces the callback, and Unregister removes it only when
  /// the owner matches — so a dying service instance cannot tear down a
  /// successor's gauge. Callbacks must not call back into the registry.
  void RegisterCallbackGauge(std::string_view family, std::string_view help,
                             const void* owner, std::function<double()> fn,
                             std::string_view label_key = {},
                             std::string_view label_value = {});
  void UnregisterCallbackGauge(std::string_view family, const void* owner,
                               std::string_view label_key = {},
                               std::string_view label_value = {});

  /// (label_value, value) of every counter in `family`, sorted. The shim
  /// behind ValidatorCounters::Snapshot and the failpoint hit table.
  std::vector<std::pair<std::string, uint64_t>> CounterFamilySnapshot(
      std::string_view family) const;

  /// The registered histogram for (family, label_value), or nullptr —
  /// bench_serve uses this to difference interval snapshots.
  Histogram* FindHistogram(std::string_view family,
                           std::string_view label_value = {}) const;

  /// Every histogram with at least one observation, sorted by key.
  std::vector<HistogramEntry> HistogramEntries() const;

  /// Prometheus text exposition (version 0.0.4) of every instrument:
  /// HELP/TYPE per family, cumulative `_bucket{le=...}` + `_sum` +
  /// `_count` per histogram (nanosecond histograms in seconds), callback
  /// gauges evaluated inline. Zero-count log2 buckets are elided (the
  /// cumulative encoding keeps sparse bucket lists valid).
  std::string RenderPrometheus() const;

 private:
  struct CallbackGauge {
    std::string help;
    const void* owner = nullptr;
    std::function<double()> fn;
  };
  template <typename T>
  using MetricMap = std::vector<std::pair<MetricKey, std::unique_ptr<T>>>;

  template <typename T>
  static T* Find(MetricMap<T>& metrics, const MetricKey& key);

  /// Records `help` as the family's HELP text (first registration wins).
  /// Caller holds mu_.
  void RecordHelp(const std::string& family, std::string_view help);

  // guards: the metric maps below. The instruments they point to are
  // internally synchronized; only the map structure needs the lock.
  mutable std::mutex mu_;
  MetricMap<Counter> counters_;
  MetricMap<Gauge> gauges_;
  MetricMap<Histogram> histograms_;
  std::vector<std::pair<MetricKey, CallbackGauge>> callbacks_;
  std::vector<std::pair<std::string, std::string>> help_;  // family -> help
};

}  // namespace obs
}  // namespace fsim

#endif  // FSIM_OBS_METRICS_H_
