#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fsim {
namespace obs {

namespace {

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// `{key="value"}` or "" for unlabeled metrics; `extra` appends one more
/// label (the histogram `le`).
std::string LabelBlock(const MetricKey& key, std::string_view extra_key = {},
                       std::string_view extra_value = {}) {
  std::string out;
  const bool has_label = !key.label_key.empty();
  const bool has_extra = !extra_key.empty();
  if (!has_label && !has_extra) return out;
  out += '{';
  if (has_label) {
    out += key.label_key;
    out += "=\"";
    out += EscapeLabelValue(key.label_value);
    out += '"';
    if (has_extra) out += ',';
  }
  if (has_extra) {
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string FormatDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

MetricKey MakeKey(std::string_view family, std::string_view label_key,
                  std::string_view label_value) {
  return MetricKey{std::string(family), std::string(label_key),
                   std::string(label_value)};
}

}  // namespace

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      const double lower =
          i == 0 ? 0.0
                 : static_cast<double>(BucketUpperBound(i - 1)) + 1.0;
      const double upper = static_cast<double>(BucketUpperBound(i));
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(counts[i]);
      const double estimate = lower + (upper - lower) * within;
      return std::min(estimate, static_cast<double>(max));
    }
    seen += counts[i];
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::Delta(const HistogramSnapshot& after,
                                           const HistogramSnapshot& before) {
  HistogramSnapshot delta;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    delta.counts[i] = after.counts[i] - before.counts[i];
  }
  delta.count = after.count - before.count;
  delta.sum = after.sum - before.sum;
  // Shard maxima are cumulative, so the interval max is unknowable from
  // two snapshots; the cumulative max is the only safe upper bound.
  delta.max = after.max;
  return delta;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const HistogramShard& shard : shards_) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t c = shard.counts[i].load(std::memory_order_relaxed);
      snapshot.counts[i] += c;
      snapshot.count += c;
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    snapshot.max =
        std::max(snapshot.max, shard.max.load(std::memory_order_relaxed));
  }
  return snapshot;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();  // fsim-lint: allow(naked-new)
  return *registry;
}

template <typename T>
T* Registry::Find(MetricMap<T>& metrics, const MetricKey& key) {
  for (auto& [existing, metric] : metrics) {
    if (existing.family == key.family &&
        existing.label_key == key.label_key &&
        existing.label_value == key.label_value) {
      return metric.get();
    }
  }
  return nullptr;
}

Counter* Registry::GetCounter(std::string_view family, std::string_view help,
                              std::string_view label_key,
                              std::string_view label_value) {
  const MetricKey key = MakeKey(family, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Counter* existing = Find(counters_, key)) return existing;
  RecordHelp(key.family, help);
  counters_.emplace_back(key, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Gauge* Registry::GetGauge(std::string_view family, std::string_view help,
                          std::string_view label_key,
                          std::string_view label_value) {
  const MetricKey key = MakeKey(family, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Gauge* existing = Find(gauges_, key)) return existing;
  RecordHelp(key.family, help);
  gauges_.emplace_back(key, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

Histogram* Registry::GetHistogram(std::string_view family,
                                  std::string_view help, Histogram::Unit unit,
                                  std::string_view label_key,
                                  std::string_view label_value) {
  const MetricKey key = MakeKey(family, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Histogram* existing = Find(histograms_, key)) return existing;
  RecordHelp(key.family, help);
  histograms_.emplace_back(key, std::make_unique<Histogram>(unit));
  return histograms_.back().second.get();
}

void Registry::RegisterCallbackGauge(std::string_view family,
                                     std::string_view help, const void* owner,
                                     std::function<double()> fn,
                                     std::string_view label_key,
                                     std::string_view label_value) {
  const MetricKey key = MakeKey(family, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  RecordHelp(key.family, help);
  for (auto& [existing, callback] : callbacks_) {
    if (existing.family == key.family &&
        existing.label_key == key.label_key &&
        existing.label_value == key.label_value) {
      callback.owner = owner;
      callback.fn = std::move(fn);
      return;
    }
  }
  callbacks_.emplace_back(
      key, CallbackGauge{std::string(help), owner, std::move(fn)});
}

void Registry::UnregisterCallbackGauge(std::string_view family,
                                       const void* owner,
                                       std::string_view label_key,
                                       std::string_view label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(callbacks_, [&](const auto& entry) {
    return entry.first.family == family &&
           entry.first.label_key == label_key &&
           entry.first.label_value == label_value &&
           entry.second.owner == owner;
  });
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterFamilySnapshot(
    std::string_view family) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, counter] : counters_) {
      if (key.family == family) {
        out.emplace_back(key.label_value, counter->Value());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Histogram* Registry::FindHistogram(std::string_view family,
                                   std::string_view label_value) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, histogram] : histograms_) {
    if (key.family == family && key.label_value == label_value) {
      return histogram.get();
    }
  }
  return nullptr;
}

std::vector<HistogramEntry> Registry::HistogramEntries() const {
  std::vector<HistogramEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, histogram] : histograms_) {
      HistogramEntry entry;
      entry.key = key;
      entry.unit = histogram->unit();
      entry.snapshot = histogram->Snapshot();
      if (entry.snapshot.count > 0) out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramEntry& a, const HistogramEntry& b) {
              return a.key < b.key;
            });
  return out;
}

void Registry::RecordHelp(const std::string& family, std::string_view help) {
  for (const auto& [existing, _] : help_) {
    if (existing == family) return;
  }
  help_.emplace_back(family, std::string(help));
}

std::string Registry::RenderPrometheus() const {
  // Copy the instrument lists under the lock, render outside it (callback
  // gauges run user code that must not re-enter the registry anyway, but
  // snapshotting first keeps the lock hold time bounded).
  struct CounterRow {
    MetricKey key;
    uint64_t value;
  };
  struct GaugeRow {
    MetricKey key;
    double value;
  };
  struct HistogramRow {
    MetricKey key;
    Histogram::Unit unit;
    HistogramSnapshot snapshot;
  };
  std::vector<CounterRow> counter_rows;
  std::vector<GaugeRow> gauge_rows;
  std::vector<HistogramRow> histogram_rows;
  std::vector<std::pair<MetricKey, std::function<double()>>> callback_rows;
  std::vector<std::pair<std::string, std::string>> help;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, counter] : counters_) {
      counter_rows.push_back({key, counter->Value()});
    }
    for (const auto& [key, gauge] : gauges_) {
      gauge_rows.push_back({key, gauge->Value()});
    }
    for (const auto& [key, histogram] : histograms_) {
      histogram_rows.push_back({key, histogram->unit(),
                                histogram->Snapshot()});
    }
    for (const auto& [key, callback] : callbacks_) {
      callback_rows.emplace_back(key, callback.fn);
    }
    help = help_;
  }
  auto help_for = [&](const std::string& family) -> std::string {
    for (const auto& [name, text] : help) {
      if (name == family) return text;
    }
    return "";
  };
  auto sort_by_key = [](auto& rows) {
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
  };
  sort_by_key(counter_rows);
  sort_by_key(gauge_rows);
  sort_by_key(histogram_rows);
  std::sort(callback_rows.begin(), callback_rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out;
  auto header = [&](const std::string& family, const char* type) {
    out += "# HELP " + family + " " + help_for(family) + "\n";
    out += "# TYPE " + family + " " + type + "\n";
  };
  std::string last_family;

  for (const CounterRow& row : counter_rows) {
    if (row.key.family != last_family) {
      header(row.key.family, "counter");
      last_family = row.key.family;
    }
    out += row.key.family + LabelBlock(row.key) + " " +
           std::to_string(row.value) + "\n";
  }
  last_family.clear();
  for (const GaugeRow& row : gauge_rows) {
    if (row.key.family != last_family) {
      header(row.key.family, "gauge");
      last_family = row.key.family;
    }
    out += row.key.family + LabelBlock(row.key) + " " +
           FormatDouble(row.value) + "\n";
  }
  last_family.clear();
  for (const auto& [key, fn] : callback_rows) {
    if (key.family != last_family) {
      header(key.family, "gauge");
      last_family = key.family;
    }
    out += key.family + LabelBlock(key) + " " + FormatDouble(fn()) + "\n";
  }
  last_family.clear();
  for (const HistogramRow& row : histogram_rows) {
    if (row.key.family != last_family) {
      header(row.key.family, "histogram");
      last_family = row.key.family;
    }
    const bool is_time = row.unit == Histogram::Unit::kNanoseconds;
    const double scale = is_time ? 1e-9 : 1.0;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (row.snapshot.counts[i] == 0) continue;  // sparse, still cumulative
      cumulative += row.snapshot.counts[i];
      const double le =
          static_cast<double>(HistogramSnapshot::BucketUpperBound(i)) * scale;
      out += row.key.family + "_bucket" +
             LabelBlock(row.key, "le", FormatDouble(le)) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += row.key.family + "_bucket" + LabelBlock(row.key, "le", "+Inf") +
           " " + std::to_string(row.snapshot.count) + "\n";
    out += row.key.family + "_sum" + LabelBlock(row.key) + " " +
           FormatDouble(static_cast<double>(row.snapshot.sum) * scale) + "\n";
    out += row.key.family + "_count" + LabelBlock(row.key) + " " +
           std::to_string(row.snapshot.count) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace fsim
