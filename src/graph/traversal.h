// BFS utilities: distances, diameter, connected components. Used by strong
// simulation (query diameter), the GSANA-like aligner (anchor distances) and
// the query generator (connected subgraph extraction).
#ifndef FSIM_GRAPH_TRAVERSAL_H_
#define FSIM_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

constexpr uint32_t kUnreachable = ~0U;

/// Single-source BFS distances. With `undirected` the search follows both
/// edge directions (the shortest-distance notion of strong simulation's
/// balls); otherwise only out-edges.
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   bool undirected = true);

/// Exact diameter of the graph under undirected shortest distances, i.e. the
/// maximum finite pairwise distance (all-pairs BFS; intended for small query
/// graphs). Returns 0 for graphs with < 2 nodes.
uint32_t ExactDiameter(const Graph& g);

/// Weakly connected component id per node, ids dense from 0.
std::vector<uint32_t> WeaklyConnectedComponents(const Graph& g,
                                                uint32_t* num_components);

/// True if the graph is weakly connected (or empty).
bool IsWeaklyConnected(const Graph& g);

}  // namespace fsim

#endif  // FSIM_GRAPH_TRAVERSAL_H_
