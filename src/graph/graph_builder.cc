#include "graph/graph_builder.h"

#include <algorithm>

#include "common/string_util.h"

namespace fsim {

GraphBuilder::GraphBuilder() : dict_(std::make_shared<LabelDict>()) {}

GraphBuilder::GraphBuilder(std::shared_ptr<LabelDict> dict)
    : dict_(std::move(dict)) {
  FSIM_CHECK(dict_ != nullptr);
}

void GraphBuilder::ReserveNodes(size_t n) { labels_.reserve(n); }
void GraphBuilder::ReserveEdges(size_t m) { edges_.reserve(m); }

NodeId GraphBuilder::AddNode(std::string_view label) {
  return AddNodeWithLabelId(dict_->Intern(label));
}

NodeId GraphBuilder::AddNodeWithLabelId(LabelId label) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  return id;
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) { edges_.emplace_back(u, v); }

Result<Graph> GraphBuilder::Build() && {
  const size_t n = labels_.size();
  for (const auto& [u, v] : edges_) {
    if (u >= n || v >= n) {
      return Status::InvalidArgument(
          StrFormat("edge (%u,%u) references a node >= NumNodes()=%zu", u, v, n));
    }
  }

  // Sort by (src, dst) and deduplicate.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.labels_ = std::move(labels_);
  g.dict_ = dict_;

  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (size_t i = 1; i <= n; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.out_adj_.resize(edges_.size());
  g.in_adj_.resize(edges_.size());
  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(), g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.out_adj_[out_cursor[u]++] = v;
    g.in_adj_[in_cursor[v]++] = u;
  }
  // out_adj is sorted per node because edges_ was globally sorted; in_adj is
  // sorted per node because sources appear in ascending order.
  return g;
}

Graph GraphBuilder::BuildOrDie() && {
  Result<Graph> r = std::move(*this).Build();
  FSIM_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).ValueOrDie();
}

}  // namespace fsim
