// Single-edge edits on the immutable CSR Graph: produce an edited copy with
// one edge added or removed (labels, node set and the shared LabelDict are
// preserved). These are convenience wrappers over graph/dynamic_graph.h for
// callers that want to stay in the immutable-CSR world; materializing the
// copy is O(|V| + |E|), so code that edits repeatedly (e.g. the incremental
// FSim engine, core/incremental.h) should hold a DynamicGraph and patch it
// in O(deg) per edit instead.
#ifndef FSIM_GRAPH_EDITS_H_
#define FSIM_GRAPH_EDITS_H_

#include "common/result.h"
#include "graph/graph.h"

namespace fsim {

/// A copy of g with the directed edge from -> to added.
/// Errors: OutOfRange for invalid endpoints; AlreadyExists if the edge is
/// already present (simple graph invariant).
Result<Graph> WithEdgeAdded(const Graph& g, NodeId from, NodeId to);

/// A copy of g with the directed edge from -> to removed.
/// Errors: OutOfRange for invalid endpoints; NotFound if the edge is absent.
Result<Graph> WithEdgeRemoved(const Graph& g, NodeId from, NodeId to);

}  // namespace fsim

#endif  // FSIM_GRAPH_EDITS_H_
