// Descriptive statistics in the shape of the paper's Table 4.
#ifndef FSIM_GRAPH_GRAPH_STATS_H_
#define FSIM_GRAPH_GRAPH_STATS_H_

#include <string>

#include "graph/graph.h"

namespace fsim {

/// |V|, |E|, |Σ|, d_G, D+_G, D-_G — the columns of Table 4.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
  double avg_degree = 0.0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
};

GraphStats ComputeStats(const Graph& g);

/// One-line rendering, e.g. "|V|=2361 |E|=7182 |Σ|=13 d=3.0 D+=60 D-=47".
std::string StatsToString(const GraphStats& stats);

}  // namespace fsim

#endif  // FSIM_GRAPH_GRAPH_STATS_H_
