// Random labeled graph generators. These are the substrate for the synthetic
// dataset analogs (datasets/) and for the randomized property tests.
#ifndef FSIM_GRAPH_GENERATORS_H_
#define FSIM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "graph/graph.h"

namespace fsim {

/// Parameters shared by the generators for label assignment: labels are
/// drawn from a Zipf distribution over `num_labels` (real-graph label
/// frequencies are heavy-tailed; skew 0 = uniform).
struct LabelingOptions {
  uint32_t num_labels = 4;
  double skew = 1.0;
  /// Label strings are "L0", "L1", ... interned into `dict` (fresh if null).
  std::shared_ptr<LabelDict> dict;
};

/// G(n, m) Erdős–Rényi digraph: m distinct directed edges chosen uniformly
/// at random (no self loops).
Graph ErdosRenyi(uint32_t n, uint64_t m, const LabelingOptions& labels,
                 uint64_t seed);

/// Options for the Chung-Lu style power-law digraph used to mimic the degree
/// shape of the real datasets in Table 4.
struct PowerLawOptions {
  uint32_t n = 1000;
  double avg_degree = 4.0;
  uint32_t max_out_degree = 100;
  uint32_t max_in_degree = 100;
  /// Pareto exponent of the degree tails (2.1 ≈ typical web/citation graphs).
  double exponent = 2.1;
};

/// Directed Chung-Lu: draws out- and in-degree sequences from truncated power
/// laws and wires edges with probability proportional to d+(u) * d-(v).
/// Duplicate draws are discarded, so the realized edge count is close to (a
/// bit under) n * avg_degree.
Graph PowerLawGraph(const PowerLawOptions& opts, const LabelingOptions& labels,
                    uint64_t seed);

/// Directed preferential attachment: each new node attaches `edges_per_node`
/// out-edges to previously inserted nodes, preferring high in-degree targets.
/// Produces a few very-high in-degree hubs (the JDK/ACMCit shape).
Graph PreferentialAttachment(uint32_t n, uint32_t edges_per_node,
                             const LabelingOptions& labels, uint64_t seed);

}  // namespace fsim

#endif  // FSIM_GRAPH_GENERATORS_H_
