#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

Result<Graph> LoadGraphFromString(std::string_view text,
                                  std::shared_ptr<LabelDict> dict) {
  GraphBuilder builder(dict ? std::move(dict)
                            : std::make_shared<LabelDict>());
  size_t line_no = 0;
  for (std::string_view line : Split(text, '\n')) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    auto fields = SplitWhitespace(line);
    if (fields[0] == "v") {
      if (fields.size() != 3) {
        return Status::IOError(
            StrFormat("line %zu: expected 'v <id> <label>'", line_no));
      }
      uint64_t id = 0;
      auto idstr = std::string(fields[1]);
      if (std::sscanf(idstr.c_str(), "%lu", &id) != 1) {
        return Status::IOError(StrFormat("line %zu: bad node id", line_no));
      }
      if (id != builder.NumNodes()) {
        return Status::IOError(StrFormat(
            "line %zu: node ids must be dense and ascending (got %lu, "
            "expected %zu)",
            line_no, id, builder.NumNodes()));
      }
      builder.AddNode(fields[2]);
    } else if (fields[0] == "e") {
      if (fields.size() != 3) {
        return Status::IOError(
            StrFormat("line %zu: expected 'e <src> <dst>'", line_no));
      }
      uint64_t u = 0, v = 0;
      auto us = std::string(fields[1]);
      auto vs = std::string(fields[2]);
      if (std::sscanf(us.c_str(), "%lu", &u) != 1 ||
          std::sscanf(vs.c_str(), "%lu", &v) != 1) {
        return Status::IOError(StrFormat("line %zu: bad edge endpoint", line_no));
      }
      builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    } else {
      return Status::IOError(
          StrFormat("line %zu: unknown record type '%.*s'", line_no,
                    static_cast<int>(fields[0].size()), fields[0].data()));
    }
  }
  return std::move(builder).Build();
}

Result<Graph> LoadGraphFromFile(const std::string& path,
                                std::shared_ptr<LabelDict> dict) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return LoadGraphFromString(ss.str(), std::move(dict));
}

std::string GraphToString(const Graph& g) {
  std::string out;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    out += StrFormat("v %u ", u);
    out += std::string(g.LabelName(u));
    out += '\n';
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      out += StrFormat("e %u %u\n", u, v);
    }
  }
  return out;
}

Status SaveGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << GraphToString(g);
  if (!out) {
    return Status::IOError("write failed on " + path);
  }
  return Status::OK();
}

}  // namespace fsim
