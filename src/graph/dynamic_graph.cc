#include "graph/dynamic_graph.h"

#include <algorithm>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

namespace {

Status ValidateEndpoints(size_t num_nodes, NodeId from, NodeId to) {
  if (from >= num_nodes || to >= num_nodes) {
    return Status::OutOfRange(
        StrFormat("edge (%u, %u) out of range for graph with %zu nodes", from,
                  to, num_nodes));
  }
  return Status::OK();
}

/// Inserts v into the sorted list if absent; returns false if present.
bool SortedInsert(std::vector<NodeId>& list, NodeId v) {
  auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  return true;
}

/// Erases v from the sorted list; returns false if absent.
bool SortedErase(std::vector<NodeId>& list, NodeId v) {
  auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  return true;
}

}  // namespace

DynamicGraph::DynamicGraph(const Graph& g)
    : out_(g.NumNodes()),
      in_(g.NumNodes()),
      labels_(g.NumNodes()),
      dict_(g.dict()),
      num_edges_(g.NumEdges()) {
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    labels_[u] = g.Label(u);
    auto out = g.OutNeighbors(u);
    out_[u].assign(out.begin(), out.end());
    auto in = g.InNeighbors(u);
    in_[u].assign(in.begin(), in.end());
  }
}

Status DynamicGraph::InsertEdge(NodeId from, NodeId to) {
  FSIM_RETURN_NOT_OK(ValidateEndpoints(NumNodes(), from, to));
  if (!SortedInsert(out_[from], to)) {
    return Status::AlreadyExists(
        StrFormat("edge (%u, %u) already present", from, to));
  }
  SortedInsert(in_[to], from);
  ++num_edges_;
  FSIM_DCHECK(std::is_sorted(out_[from].begin(), out_[from].end()));
  FSIM_DCHECK(std::binary_search(in_[to].begin(), in_[to].end(), from));
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(NodeId from, NodeId to) {
  FSIM_RETURN_NOT_OK(ValidateEndpoints(NumNodes(), from, to));
  if (!SortedErase(out_[from], to)) {
    return Status::NotFound(StrFormat("edge (%u, %u) not present", from, to));
  }
  SortedErase(in_[to], from);
  --num_edges_;
  FSIM_DCHECK(!std::binary_search(out_[from].begin(), out_[from].end(), to));
  FSIM_DCHECK(!std::binary_search(in_[to].begin(), in_[to].end(), from));
  return Status::OK();
}

Status DynamicGraph::ValidateAdjacency() const {
  ValidatorCounters::Bump("DynamicGraph::ValidateAdjacency");
  const size_t n = NumNodes();
  if (out_.size() != n || in_.size() != n) {
    return Status::Internal(StrFormat(
        "adjacency arrays sized %zu/%zu for %zu labeled nodes", out_.size(),
        in_.size(), n));
  }
  size_t out_total = 0;
  size_t in_total = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto check_list = [&](const std::vector<NodeId>& list,
                                const char* kind) -> Status {
      for (size_t k = 0; k < list.size(); ++k) {
        if (list[k] >= n) {
          return Status::Internal(StrFormat(
              "%s list of node %u targets out-of-range node %u", kind, u,
              list[k]));
        }
        if (k > 0 && list[k] <= list[k - 1]) {
          return Status::Internal(StrFormat(
              "%s list of node %u not strictly ascending at position %zu",
              kind, u, k));
        }
      }
      return Status::OK();
    };
    FSIM_RETURN_NOT_OK(check_list(out_[u], "out"));
    FSIM_RETURN_NOT_OK(check_list(in_[u], "in"));
    out_total += out_[u].size();
    in_total += in_[u].size();
    // Mirror consistency: every out-edge must be readable back through the
    // in-direction (and the totals below force the converse).
    for (NodeId v : out_[u]) {
      if (!std::binary_search(in_[v].begin(), in_[v].end(), u)) {
        return Status::Internal(StrFormat(
            "edge (%u, %u) present in out[%u] but missing from in[%u]", u, v,
            u, v));
      }
    }
  }
  if (out_total != num_edges_ || in_total != num_edges_) {
    return Status::Internal(StrFormat(
        "edge accounting: num_edges=%zu but Σ|out|=%zu, Σ|in|=%zu",
        num_edges_, out_total, in_total));
  }
  return Status::OK();
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  FSIM_DCHECK(u < NumNodes());
  return std::binary_search(out_[u].begin(), out_[u].end(), v);
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder b(dict_);
  b.ReserveNodes(NumNodes());
  b.ReserveEdges(num_edges_);
  for (NodeId u = 0; u < NumNodes(); ++u) {
    b.AddNodeWithLabelId(labels_[u]);
  }
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId w : out_[u]) b.AddEdge(u, w);
  }
  return std::move(b).BuildOrDie();
}

}  // namespace fsim
