#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

namespace {

constexpr char kMagic[8] = {'F', 'S', 'I', 'M', 'G', 'R', 'F', '1'};
constexpr uint32_t kVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Bounds-checked sequential reader over the payload bytes.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadBytes(size_t len, std::string_view* out) {
    if (pos_ + len > bytes_.size()) return false;
    *out = bytes_.substr(pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::IOError(
      StrFormat("truncated binary graph: unable to read %s", what));
}

}  // namespace

std::string GraphToBinary(const Graph& g) {
  std::string out(kMagic, sizeof(kMagic));
  AppendU32(&out, kVersion);
  AppendU32(&out, 0);  // flags
  AppendU64(&out, g.NumNodes());
  AppendU64(&out, g.NumEdges());
  const LabelDict& dict = *g.dict();
  AppendU64(&out, dict.size());
  for (LabelId id = 0; id < dict.size(); ++id) {
    std::string_view name = dict.Name(id);
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) AppendU32(&out, g.Label(u));
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId w : g.OutNeighbors(u)) {
      AppendU32(&out, u);
      AppendU32(&out, w);
    }
  }
  const uint64_t checksum =
      HashBytes(out.data() + sizeof(kMagic), out.size() - sizeof(kMagic));
  AppendU64(&out, checksum);
  return out;
}

Result<Graph> GraphFromBinary(std::string_view bytes,
                              std::shared_ptr<LabelDict> dict) {
  if (bytes.size() < sizeof(kMagic) + 8 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("not a binary fsim graph (bad magic)");
  }
  // Verify the whole-payload checksum before trusting any field.
  const size_t payload_end = bytes.size() - 8;
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + payload_end, 8);
  const uint64_t computed = HashBytes(bytes.data() + sizeof(kMagic),
                                      payload_end - sizeof(kMagic));
  if (stored_checksum != computed) {
    return Status::IOError("binary graph checksum mismatch (corrupt file?)");
  }

  Reader r(bytes.substr(0, payload_end));
  std::string_view skip;
  FSIM_CHECK(r.ReadBytes(sizeof(kMagic), &skip));

  uint32_t version, flags;
  if (!r.ReadU32(&version)) return Truncated("version");
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported binary graph version %u (expected %u)",
                  version, kVersion));
  }
  if (!r.ReadU32(&flags)) return Truncated("flags");
  if (flags != 0) {
    return Status::InvalidArgument(
        StrFormat("unsupported binary graph flags 0x%x", flags));
  }

  uint64_t num_nodes, num_edges, num_labels;
  if (!r.ReadU64(&num_nodes)) return Truncated("node count");
  if (!r.ReadU64(&num_edges)) return Truncated("edge count");
  if (!r.ReadU64(&num_labels)) return Truncated("label count");
  if (num_nodes >= kInvalidNode) {
    return Status::InvalidArgument(
        StrFormat("node count %llu exceeds the 32-bit id space",
                  static_cast<unsigned long long>(num_nodes)));
  }
  // Cheap structural sanity before any allocation sized by header fields:
  // every label record needs >= 4 bytes, every node 4, every edge 8 — each
  // count is bounded by the remaining payload on its own (separate checks
  // so no sum can overflow).
  const uint64_t remaining = r.remaining();
  if (num_labels > remaining / 4 || num_nodes > remaining / 4 ||
      num_edges > remaining / 8 ||
      num_labels * 4 + num_nodes * 4 + num_edges * 8 > remaining) {
    return Status::IOError(
        "binary graph header advertises more data than the file contains");
  }

  // Dictionary strings, remapped through the target dict by name.
  if (!dict) dict = std::make_shared<LabelDict>();
  std::vector<LabelId> remap(num_labels);
  for (uint64_t i = 0; i < num_labels; ++i) {
    uint32_t len;
    if (!r.ReadU32(&len)) return Truncated("label length");
    std::string_view name;
    if (!r.ReadBytes(len, &name)) return Truncated("label string");
    remap[i] = dict->Intern(name);
  }

  GraphBuilder b(dict);
  b.ReserveNodes(num_nodes);
  b.ReserveEdges(num_edges);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint32_t label;
    if (!r.ReadU32(&label)) return Truncated("node label");
    if (label >= num_labels) {
      return Status::InvalidArgument(
          StrFormat("node %llu has label id %u >= label count %llu",
                    static_cast<unsigned long long>(u), label,
                    static_cast<unsigned long long>(num_labels)));
    }
    b.AddNodeWithLabelId(remap[label]);
  }
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint32_t src, dst;
    if (!r.ReadU32(&src)) return Truncated("edge source");
    if (!r.ReadU32(&dst)) return Truncated("edge target");
    if (src >= num_nodes || dst >= num_nodes) {
      return Status::InvalidArgument(
          StrFormat("edge (%u, %u) out of range for %llu nodes", src, dst,
                    static_cast<unsigned long long>(num_nodes)));
    }
    b.AddEdge(src, dst);
  }
  if (r.remaining() != 0) {
    return Status::IOError(StrFormat(
        "binary graph has %zu trailing payload bytes", r.remaining()));
  }
  return std::move(b).Build();
}

Status SaveGraphBinaryToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError(StrFormat("cannot open %s for writing",
                                     path.c_str()));
  }
  const std::string bytes = GraphToBinary(g);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IOError(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

Result<Graph> LoadGraphBinaryFromFile(const std::string& path,
                                      std::shared_ptr<LabelDict> dict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError(StrFormat("read from %s failed", path.c_str()));
  }
  return GraphFromBinary(buffer.str(), std::move(dict));
}

}  // namespace fsim
