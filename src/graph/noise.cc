#include "graph/noise.h"

#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "graph/graph_builder.h"

namespace fsim {

namespace {

/// Rebuilds `g` with the given edge list. The rebuilt graph shares `g`'s
/// label dictionary so scores stay comparable across the clean and the
/// perturbed graph (the robustness experiments correlate exactly those).
Graph RebuildWithEdges(const Graph& g,
                       const std::vector<std::pair<NodeId, NodeId>>& edges,
                       const std::vector<LabelId>* new_labels = nullptr) {
  GraphBuilder builder(g.dict());
  builder.ReserveNodes(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    builder.AddNodeWithLabelId(new_labels ? (*new_labels)[u] : g.Label(u));
  }
  builder.ReserveEdges(edges.size());
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).BuildOrDie();
}

std::vector<std::pair<NodeId, NodeId>> CollectEdges(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.emplace_back(u, v);
  }
  return edges;
}

void AddRandomEdges(const Graph& g, size_t count,
                    std::vector<std::pair<NodeId, NodeId>>* edges, Rng* rng) {
  const size_t n = g.NumNodes();
  if (n < 2) return;
  std::unordered_set<uint64_t> present;
  present.reserve(edges->size() * 2 + count * 2);
  for (const auto& [u, v] : *edges) present.insert(PairKey(u, v));
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = 32 * count + 1024;
  while (added < count && attempts < max_attempts) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (present.insert(PairKey(u, v)).second) {
      edges->emplace_back(u, v);
      ++added;
    }
  }
}

}  // namespace

Graph PerturbStructure(const Graph& g, double add_fraction,
                       double remove_fraction, uint64_t seed) {
  FSIM_CHECK(add_fraction >= 0 && remove_fraction >= 0 && remove_fraction <= 1);
  Rng rng(seed);
  auto edges = CollectEdges(g);
  // Remove a uniform sample of existing edges.
  const size_t remove_count =
      static_cast<size_t>(remove_fraction * static_cast<double>(edges.size()));
  rng.Shuffle(&edges);
  edges.resize(edges.size() - remove_count);
  // Add random new edges.
  const size_t add_count =
      static_cast<size_t>(add_fraction * static_cast<double>(g.NumEdges()));
  AddRandomEdges(g, add_count, &edges, &rng);
  return RebuildWithEdges(g, edges);
}

Graph PerturbLabels(const Graph& g, double fraction, LabelNoiseMode mode,
                    uint64_t seed) {
  FSIM_CHECK(fraction >= 0 && fraction <= 1);
  Rng rng(seed);
  std::vector<NodeId> order(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) order[u] = u;
  rng.Shuffle(&order);
  const size_t count =
      static_cast<size_t>(fraction * static_cast<double>(g.NumNodes()));

  std::vector<LabelId> labels(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) labels[u] = g.Label(u);

  // The distinct-label pool for kRandom replacement excludes the sentinel,
  // so capture the size before interning "?".
  const size_t dict_size = g.dict()->size();
  auto edges = CollectEdges(g);
  GraphBuilder builder(g.dict());
  const LabelId missing = builder.dict()->Intern("?");
  for (size_t i = 0; i < count; ++i) {
    NodeId u = order[i];
    if (mode == LabelNoiseMode::kMissing) {
      labels[u] = missing;
    } else {
      // Replace with a different existing label.
      LabelId replacement = labels[u];
      if (dict_size > 1) {
        while (replacement == labels[u]) {
          replacement = static_cast<LabelId>(rng.NextBounded(dict_size));
        }
      }
      labels[u] = replacement;
    }
  }
  builder.ReserveNodes(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    builder.AddNodeWithLabelId(labels[u]);
  }
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).BuildOrDie();
}

Graph ScaleDensity(const Graph& g, double multiplier, uint64_t seed) {
  FSIM_CHECK(multiplier >= 1.0);
  Rng rng(seed);
  auto edges = CollectEdges(g);
  const size_t add_count = static_cast<size_t>(
      (multiplier - 1.0) * static_cast<double>(g.NumEdges()));
  AddRandomEdges(g, add_count, &edges, &rng);
  return RebuildWithEdges(g, edges);
}

}  // namespace fsim
