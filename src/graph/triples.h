// Edge-labeled (RDF-style) data in the node-labeled model, by reification:
// every triple (s, p, o) becomes two edges s -> r -> o through a fresh
// intermediate node r labeled with the predicate p. The paper's formal model
// is node-labeled only, and its RDF alignment case study (§5.4, Olap [7])
// drops the 23 edge labels of the biological graphs; reification is the
// standard encoding that keeps that information available to FSimχ, exact
// χ-simulation and the aligners without any engine change.
//
// Text format (one record per line, '#' starts a comment):
//   n <name> <label>      optional entity declaration with an explicit label
//   t <s> <p> <o>         triple; undeclared entities get the default label
//
// Entity names are free-form tokens (e.g. URIs); they are mapped to dense
// node ids in declaration/first-use order.
#ifndef FSIM_GRAPH_TRIPLES_H_
#define FSIM_GRAPH_TRIPLES_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "graph/graph.h"

namespace fsim {

/// The result of reifying a triple stream.
struct ReifiedGraph {
  Graph graph;
  /// Entity name -> node id (reified predicate nodes are not listed; they
  /// occupy the ids >= entities.size(), one per triple, in input order).
  std::unordered_map<std::string, NodeId> entities;
  size_t num_triples = 0;
};

/// Options for the reification.
struct ReifyOptions {
  /// Label given to entities without an `n` declaration.
  std::string default_entity_label = "entity";
  /// Labels of reified predicate nodes are prefixed with this (so predicate
  /// labels cannot collide with entity labels).
  std::string predicate_label_prefix = "rel:";
};

/// Parses the triple text format above into a reified node-labeled graph.
/// If `dict` is non-null, labels are interned into it (to share ids across
/// graphs, e.g. for alignment); otherwise a fresh dictionary is created.
/// Errors: InvalidArgument with a line number for malformed records.
Result<ReifiedGraph> LoadTriplesFromString(
    std::string_view text, const ReifyOptions& options = {},
    std::shared_ptr<LabelDict> dict = nullptr);

/// File variant of LoadTriplesFromString.
Result<ReifiedGraph> LoadTriplesFromFile(
    const std::string& path, const ReifyOptions& options = {},
    std::shared_ptr<LabelDict> dict = nullptr);

}  // namespace fsim

#endif  // FSIM_GRAPH_TRIPLES_H_
