// Noise injectors for the robustness experiments (Fig. 5), the pattern-
// matching query scenarios (Table 6) and the density-scaling run (Fig. 9b).
#ifndef FSIM_GRAPH_NOISE_H_
#define FSIM_GRAPH_NOISE_H_

#include "graph/graph.h"

namespace fsim {

/// Structural errors (Fig. 5a): removes `remove_fraction` of the existing
/// edges and adds `add_fraction`*|E| random new edges (uniform endpoints,
/// no duplicates/self-loops).
Graph PerturbStructure(const Graph& g, double add_fraction,
                       double remove_fraction, uint64_t seed);

/// How PerturbLabels rewrites the affected labels.
enum class LabelNoiseMode {
  /// The label is replaced by a fresh sentinel label "?" (the paper's
  /// "certain labels missing" scenario, Fig. 5b).
  kMissing,
  /// The label is replaced by a different label drawn uniformly from the
  /// graph's label set (Table 6 "Noisy-L" queries "randomly modify node
  /// labels").
  kRandom,
};

/// Label errors: rewrites the labels of a `fraction` of the nodes.
Graph PerturbLabels(const Graph& g, double fraction, LabelNoiseMode mode,
                    uint64_t seed);

/// Density scaling (Fig. 9b): returns a graph with (multiplier-1)*|E|
/// additional random edges, i.e. |E'| ≈ multiplier * |E|.
Graph ScaleDensity(const Graph& g, double multiplier, uint64_t seed);

}  // namespace fsim

#endif  // FSIM_GRAPH_NOISE_H_
