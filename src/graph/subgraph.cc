#include "graph/subgraph.h"

#include <algorithm>
#include <queue>

#include "graph/graph_builder.h"

namespace fsim {

Subgraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  Subgraph out;
  out.from_parent.assign(g.NumNodes(), kInvalidNode);

  std::vector<NodeId> unique(nodes);
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  GraphBuilder builder(g.dict());
  out.to_parent.reserve(unique.size());
  for (NodeId parent : unique) {
    FSIM_CHECK(parent < g.NumNodes());
    NodeId local = builder.AddNodeWithLabelId(g.Label(parent));
    out.from_parent[parent] = local;
    out.to_parent.push_back(parent);
  }
  for (NodeId parent : unique) {
    for (NodeId w : g.OutNeighbors(parent)) {
      if (out.from_parent[w] != kInvalidNode) {
        builder.AddEdge(out.from_parent[parent], out.from_parent[w]);
      }
    }
  }
  out.graph = std::move(builder).BuildOrDie();
  return out;
}

std::vector<NodeId> BallNodes(const Graph& g, NodeId center, uint32_t radius) {
  FSIM_CHECK(center < g.NumNodes());
  std::vector<uint32_t> dist(g.NumNodes(), ~0U);
  std::queue<NodeId> queue;
  dist[center] = 0;
  queue.push(center);
  std::vector<NodeId> nodes;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop();
    nodes.push_back(u);
    if (dist[u] == radius) continue;
    auto visit = [&](NodeId w) {
      if (dist[w] == ~0U) {
        dist[w] = dist[u] + 1;
        queue.push(w);
      }
    };
    for (NodeId w : g.OutNeighbors(u)) visit(w);
    for (NodeId w : g.InNeighbors(u)) visit(w);
  }
  return nodes;
}

Subgraph Ball(const Graph& g, NodeId center, uint32_t radius) {
  return InducedSubgraph(g, BallNodes(g, center, radius));
}

}  // namespace fsim
