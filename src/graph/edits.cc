#include "graph/edits.h"

#include "graph/dynamic_graph.h"

namespace fsim {

// Both wrappers stage the edit through DynamicGraph: the edit itself is
// O(deg), but producing the immutable CSR copy is O(|V| + |E|) either way.
// Callers that edit repeatedly should hold a DynamicGraph (or the
// incremental engine, which does) instead of round-tripping through these.

Result<Graph> WithEdgeAdded(const Graph& g, NodeId from, NodeId to) {
  DynamicGraph d(g);
  FSIM_RETURN_NOT_OK(d.InsertEdge(from, to));
  return d.ToGraph();
}

Result<Graph> WithEdgeRemoved(const Graph& g, NodeId from, NodeId to) {
  DynamicGraph d(g);
  FSIM_RETURN_NOT_OK(d.RemoveEdge(from, to));
  return d.ToGraph();
}

}  // namespace fsim
