#include "graph/edits.h"

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

namespace {

Status ValidateEndpoints(const Graph& g, NodeId from, NodeId to) {
  if (from >= g.NumNodes() || to >= g.NumNodes()) {
    return Status::OutOfRange(
        StrFormat("edge (%u, %u) out of range for graph with %zu nodes", from,
                  to, g.NumNodes()));
  }
  return Status::OK();
}

/// Copies g's nodes and edges into a fresh builder, skipping `skip_from ->
/// skip_to` (pass kInvalidNode to skip nothing).
GraphBuilder CopyWithout(const Graph& g, NodeId skip_from, NodeId skip_to) {
  GraphBuilder b(g.dict());
  b.ReserveNodes(g.NumNodes());
  b.ReserveEdges(g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    b.AddNodeWithLabelId(g.Label(u));
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId w : g.OutNeighbors(u)) {
      if (u == skip_from && w == skip_to) continue;
      b.AddEdge(u, w);
    }
  }
  return b;
}

}  // namespace

Result<Graph> WithEdgeAdded(const Graph& g, NodeId from, NodeId to) {
  FSIM_RETURN_NOT_OK(ValidateEndpoints(g, from, to));
  if (g.HasEdge(from, to)) {
    return Status::AlreadyExists(
        StrFormat("edge (%u, %u) already present", from, to));
  }
  GraphBuilder b = CopyWithout(g, kInvalidNode, kInvalidNode);
  b.AddEdge(from, to);
  return std::move(b).Build();
}

Result<Graph> WithEdgeRemoved(const Graph& g, NodeId from, NodeId to) {
  FSIM_RETURN_NOT_OK(ValidateEndpoints(g, from, to));
  if (!g.HasEdge(from, to)) {
    return Status::NotFound(StrFormat("edge (%u, %u) not present", from, to));
  }
  return std::move(CopyWithout(g, from, to)).Build();
}

}  // namespace fsim
