#include "graph/graph_stats.h"

#include "common/string_util.h"

namespace fsim {

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_nodes = g.NumNodes();
  s.num_edges = g.NumEdges();
  s.num_labels = g.NumDistinctLabels();
  s.avg_degree = g.AverageDegree();
  s.max_out_degree = g.MaxOutDegree();
  s.max_in_degree = g.MaxInDegree();
  return s;
}

std::string StatsToString(const GraphStats& s) {
  return StrFormat("|V|=%zu |E|=%zu |Sigma|=%zu d=%.1f D+=%zu D-=%zu",
                   s.num_nodes, s.num_edges, s.num_labels, s.avg_degree,
                   s.max_out_degree, s.max_in_degree);
}

}  // namespace fsim
