// GraphBuilder: accumulates nodes and edges, then emits an immutable CSR
// Graph (sorted, deduplicated adjacency plus the reverse adjacency).
#ifndef FSIM_GRAPH_GRAPH_BUILDER_H_
#define FSIM_GRAPH_GRAPH_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace fsim {

/// Mutable staging area for graph construction.
///
///   GraphBuilder b;
///   NodeId u = b.AddNode("Person");
///   NodeId v = b.AddNode("Paper");
///   b.AddEdge(u, v);
///   Graph g = std::move(b).BuildOrDie();
///
/// Pass an existing LabelDict to share label ids across graphs (required for
/// cross-graph simulation).
class GraphBuilder {
 public:
  /// Creates a builder with a fresh label dictionary.
  GraphBuilder();
  /// Creates a builder interning into an existing (shared) dictionary.
  explicit GraphBuilder(std::shared_ptr<LabelDict> dict);

  void ReserveNodes(size_t n);
  void ReserveEdges(size_t m);

  /// Adds a node with the given label string; returns its id (dense, in
  /// insertion order).
  NodeId AddNode(std::string_view label);

  /// Adds a node with an already-interned label id.
  NodeId AddNodeWithLabelId(LabelId label);

  /// Records the directed edge u -> v. Parallel duplicates are removed at
  /// Build time. Endpoints must be < NumNodes() at Build time.
  void AddEdge(NodeId u, NodeId v);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumStagedEdges() const { return edges_.size(); }

  /// The dictionary this builder interns into (share it with other builders
  /// for cross-graph computations).
  const std::shared_ptr<LabelDict>& dict() const { return dict_; }

  /// Validates endpoints, sorts/dedups adjacency, and produces the Graph.
  /// The builder is consumed.
  Result<Graph> Build() &&;

  /// Build() that aborts on error; for tests and generators whose inputs are
  /// correct by construction.
  Graph BuildOrDie() &&;

 private:
  std::shared_ptr<LabelDict> dict_;
  std::vector<LabelId> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace fsim

#endif  // FSIM_GRAPH_GRAPH_BUILDER_H_
