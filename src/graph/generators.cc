#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

namespace {

/// Word stems for generated label names. Real-graph labels are structured
/// strings (NELL: "concept:athlete", DBpedia types, ...), so string-
/// similarity label functions (L_E, L_J) see a realistic mix: labels sharing
/// a stem are near-identical, labels with different stems differ broadly.
constexpr const char* kLabelStems[] = {
    "agent", "athlete", "bank",   "city",    "company", "country",
    "disease", "drug",  "event",  "food",    "journal", "movie",
    "person", "protein", "sport", "team"};
constexpr uint32_t kNumStems = 16;

/// Adds n nodes with Zipf-distributed labels named "<stem><index>".
void AddLabeledNodes(GraphBuilder* builder, uint32_t n,
                     const LabelingOptions& labels, Rng* rng) {
  FSIM_CHECK(labels.num_labels >= 1);
  ZipfSampler sampler(labels.num_labels, labels.skew);
  builder->ReserveNodes(n);
  // Intern all label strings first so ids are stable regardless of draw
  // order.
  std::vector<LabelId> ids(labels.num_labels);
  for (uint32_t k = 0; k < labels.num_labels; ++k) {
    ids[k] = builder->dict()->Intern(
        StrFormat("%s%02u", kLabelStems[k % kNumStems], k / kNumStems));
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder->AddNodeWithLabelId(ids[sampler.Sample(rng)]);
  }
}

GraphBuilder MakeBuilder(const LabelingOptions& labels) {
  return labels.dict ? GraphBuilder(labels.dict) : GraphBuilder();
}

}  // namespace

Graph ErdosRenyi(uint32_t n, uint64_t m, const LabelingOptions& labels,
                 uint64_t seed) {
  FSIM_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder builder = MakeBuilder(labels);
  AddLabeledNodes(&builder, n, labels, &rng);

  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1);
  m = std::min(m, max_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  builder.ReserveEdges(m);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).BuildOrDie();
}

Graph PowerLawGraph(const PowerLawOptions& opts, const LabelingOptions& labels,
                    uint64_t seed) {
  FSIM_CHECK(opts.n >= 2);
  Rng rng(seed);
  GraphBuilder builder = MakeBuilder(labels);
  AddLabeledNodes(&builder, opts.n, labels, &rng);

  auto out_deg = PowerLawDegreeSequence(opts.n, opts.avg_degree,
                                        opts.max_out_degree, opts.exponent,
                                        &rng);
  auto in_deg = PowerLawDegreeSequence(opts.n, opts.avg_degree,
                                       opts.max_in_degree, opts.exponent,
                                       &rng);
  // Build weighted endpoints lists; sampling an edge = (sample src by out
  // weight, sample dst by in weight). This is the standard Chung-Lu pairing.
  std::vector<NodeId> src_slots;
  std::vector<NodeId> dst_slots;
  for (NodeId u = 0; u < opts.n; ++u) {
    for (uint32_t k = 0; k < out_deg[u]; ++k) src_slots.push_back(u);
    for (uint32_t k = 0; k < in_deg[u]; ++k) dst_slots.push_back(u);
  }
  rng.Shuffle(&src_slots);
  rng.Shuffle(&dst_slots);
  const size_t target = std::min(src_slots.size(), dst_slots.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(target * 2);
  for (size_t i = 0; i < target; ++i) {
    NodeId u = src_slots[i];
    NodeId v = dst_slots[i];
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) {
      builder.AddEdge(u, v);
    }
  }
  return std::move(builder).BuildOrDie();
}

Graph PreferentialAttachment(uint32_t n, uint32_t edges_per_node,
                             const LabelingOptions& labels, uint64_t seed) {
  FSIM_CHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder builder = MakeBuilder(labels);
  AddLabeledNodes(&builder, n, labels, &rng);

  // `targets` holds one entry per incoming edge endpoint plus one baseline
  // entry per node, so the attachment probability is (in_deg(v)+1) ∝.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<size_t>(n) * (edges_per_node + 1));
  targets.push_back(0);
  for (NodeId u = 1; u < n; ++u) {
    uint32_t added = 0;
    std::unordered_set<NodeId> chosen;
    uint32_t want = std::min<uint32_t>(edges_per_node, u);
    uint32_t attempts = 0;
    while (added < want && attempts < 16 * want) {
      ++attempts;
      NodeId v = targets[rng.NextBounded(targets.size())];
      if (v == u || !chosen.insert(v).second) continue;
      builder.AddEdge(u, v);
      targets.push_back(v);
      ++added;
    }
    targets.push_back(u);
  }
  return std::move(builder).BuildOrDie();
}

}  // namespace fsim
