#include "graph/triples.h"

#include <fstream>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

namespace {

/// One parsed triple, by entity index.
struct Triple {
  size_t s;
  LabelId predicate;
  size_t o;
};

}  // namespace

Result<ReifiedGraph> LoadTriplesFromString(std::string_view text,
                                           const ReifyOptions& options,
                                           std::shared_ptr<LabelDict> dict) {
  if (!dict) dict = std::make_shared<LabelDict>();
  const LabelId default_label = dict->Intern(options.default_entity_label);

  ReifiedGraph result;
  // Entity bookkeeping: name -> dense index, plus per-entity label (default
  // until an `n` record overrides it).
  std::vector<LabelId> entity_labels;
  auto entity_index = [&](std::string_view name) -> size_t {
    auto it = result.entities.find(std::string(name));
    if (it != result.entities.end()) return it->second;
    const size_t index = entity_labels.size();
    result.entities.emplace(std::string(name), static_cast<NodeId>(index));
    entity_labels.push_back(default_label);
    return index;
  };

  std::vector<Triple> triples;
  // RDF triple sets are duplicate-free; repeated (s, p, o) records collapse
  // to one reified node.
  std::set<std::tuple<size_t, LabelId, size_t>> seen;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string_view> fields = SplitWhitespace(line);
    if (fields[0] == "n") {
      if (fields.size() != 3) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: 'n' record needs <name> <label>, got %zu fields",
            line_number, fields.size() - 1));
      }
      entity_labels[entity_index(fields[1])] = dict->Intern(fields[2]);
    } else if (fields[0] == "t") {
      if (fields.size() != 4) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: 't' record needs <s> <p> <o>, got %zu fields",
            line_number, fields.size() - 1));
      }
      const size_t s = entity_index(fields[1]);
      const LabelId predicate = dict->Intern(
          options.predicate_label_prefix + std::string(fields[2]));
      const size_t o = entity_index(fields[3]);
      if (seen.insert({s, predicate, o}).second) {
        triples.push_back(Triple{s, predicate, o});
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown record type '%.*s'", line_number,
                    static_cast<int>(fields[0].size()), fields[0].data()));
    }
  }

  // Entities first (stable ids for the caller), then one reified node per
  // triple.
  GraphBuilder b(dict);
  b.ReserveNodes(entity_labels.size() + triples.size());
  b.ReserveEdges(2 * triples.size());
  for (LabelId label : entity_labels) b.AddNodeWithLabelId(label);
  for (const Triple& t : triples) {
    NodeId r = b.AddNodeWithLabelId(t.predicate);
    b.AddEdge(static_cast<NodeId>(t.s), r);
    b.AddEdge(r, static_cast<NodeId>(t.o));
  }
  FSIM_ASSIGN_OR_RETURN(result.graph, std::move(b).Build());
  result.num_triples = triples.size();
  return result;
}

Result<ReifiedGraph> LoadTriplesFromFile(const std::string& path,
                                         const ReifyOptions& options,
                                         std::shared_ptr<LabelDict> dict) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError(StrFormat("read from %s failed", path.c_str()));
  }
  return LoadTriplesFromString(buffer.str(), options, std::move(dict));
}

}  // namespace fsim
