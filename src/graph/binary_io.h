// Binary serialization for labeled directed graphs: a compact, versioned,
// checksummed on-disk format (RocksDB-style defensive decoding — every load
// validates magic, version, size bookkeeping, id ranges and a whole-payload
// checksum before constructing the graph, and reports malformed input as
// IOError/InvalidArgument rather than crashing).
//
// Layout (little-endian):
//   magic    8 bytes  "FSIMGRF1"
//   version  u32      currently 1
//   flags    u32      reserved, must be 0
//   num_nodes  u64
//   num_edges  u64
//   num_labels u64    label dictionary entries
//   labels     num_labels x { u32 length, bytes }    (dictionary strings)
//   node_labels num_nodes x u32                      (per-node label id)
//   edges      num_edges x { u32 src, u32 dst }
//   checksum   u64    FNV-1a over everything after the magic
//
// Label ids are remapped through the target dictionary on load, so a binary
// graph can be loaded into a shared LabelDict without id clashes.
#ifndef FSIM_GRAPH_BINARY_IO_H_
#define FSIM_GRAPH_BINARY_IO_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace fsim {

/// Serializes g to the binary format.
std::string GraphToBinary(const Graph& g);

/// Parses a graph from binary bytes. If `dict` is non-null, labels are
/// interned into it (for cross-graph computations); otherwise a fresh
/// dictionary is created.
Result<Graph> GraphFromBinary(std::string_view bytes,
                              std::shared_ptr<LabelDict> dict = nullptr);

/// Writes the binary format to a file.
Status SaveGraphBinaryToFile(const Graph& g, const std::string& path);

/// Loads the binary format from a file.
Result<Graph> LoadGraphBinaryFromFile(
    const std::string& path, std::shared_ptr<LabelDict> dict = nullptr);

}  // namespace fsim

#endif  // FSIM_GRAPH_BINARY_IO_H_
