// An edit-capable companion to the immutable CSR Graph: per-node sorted
// adjacency vectors that support single-edge insertion and removal in
// O(deg) time (one binary search + one memmove per touched list), instead
// of the O(|V| + |E|) full rebuild that GraphBuilder-based editing costs.
//
// DynamicGraph mirrors Graph's read API (OutNeighbors/InNeighbors return
// sorted std::span<const NodeId>, labels and the shared LabelDict are
// preserved), so the operator templates of core/operators.h consume either
// representation unchanged. It is the graph side of the incremental FSim
// engine (core/incremental.h); batch engines keep consuming the immutable
// CSR, which ToGraph() materializes on demand.
#ifndef FSIM_GRAPH_DYNAMIC_GRAPH_H_
#define FSIM_GRAPH_DYNAMIC_GRAPH_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace fsim {

/// Mutable node-labeled directed graph with sorted, deduplicated adjacency.
///
/// The node set and labels are fixed at construction (matching the
/// incremental engine's edit model: edits are edge-level); only edges
/// change. Self-loops are permitted, parallel edges are not.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Copies g's nodes, labels and edges into per-node vectors. O(|V| + |E|).
  explicit DynamicGraph(const Graph& g);

  /// Adds the directed edge from -> to. O(OutDeg(from) + InDeg(to)).
  /// Errors: OutOfRange for invalid endpoints; AlreadyExists if present.
  Status InsertEdge(NodeId from, NodeId to);

  /// Removes the directed edge from -> to. O(OutDeg(from) + InDeg(to)).
  /// Errors: OutOfRange for invalid endpoints; NotFound if absent.
  Status RemoveEdge(NodeId from, NodeId to);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// N+(u), sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return out_[u];
  }

  /// N-(u), sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return in_[u];
  }

  size_t OutDegree(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return out_[u].size();
  }
  size_t InDegree(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return in_[u].size();
  }

  LabelId Label(NodeId u) const {
    FSIM_DCHECK(u < labels_.size());
    return labels_[u];
  }

  std::string_view LabelName(NodeId u) const { return dict_->Name(Label(u)); }

  const std::shared_ptr<LabelDict>& dict() const { return dict_; }

  /// True if the directed edge u -> v exists (binary search, O(log deg)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Materializes the current edge set as an immutable CSR Graph (shares
  /// the LabelDict). O(|V| + |E|); for handing the evolving graph to the
  /// batch engines or snapshotting.
  Graph ToGraph() const;

  /// Structural invariants of the adjacency representation: every out/in
  /// list strictly ascending (sorted, no parallel edges), every edge
  /// mirrored (v ∈ out[u] iff u ∈ in[v]), endpoints in range, and
  /// num_edges_ equal to both Σ|out| and Σ|in|. O(|V| + |E| log deg);
  /// InsertEdge/RemoveEdge re-check the two touched lists under
  /// FSIM_DEBUG_CHECKS. Bumps ValidatorCounters
  /// "DynamicGraph::ValidateAdjacency".
  Status ValidateAdjacency() const;

 private:
  // check_test.cc corrupts the adjacency through this to prove the
  // validator catches unsorted lists and missing mirror entries.
  friend struct DynamicGraphTestAccess;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<LabelId> labels_;
  std::shared_ptr<LabelDict> dict_;
  size_t num_edges_ = 0;
};

}  // namespace fsim

#endif  // FSIM_GRAPH_DYNAMIC_GRAPH_H_
