#include "graph/graph.h"

#include <algorithm>

namespace fsim {

LabelId LabelDict::Intern(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(label);
  index_.emplace(names_.back(), id);
  return id;
}

LabelId LabelDict::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  return it == index_.end() ? kInvalidNode : it->second;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

size_t Graph::NumDistinctLabels() const {
  std::vector<LabelId> seen(labels_);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return seen.size();
}

size_t Graph::MaxOutDegree() const {
  size_t best = 0;
  for (NodeId u = 0; u < NumNodes(); ++u) best = std::max(best, OutDegree(u));
  return best;
}

size_t Graph::MaxInDegree() const {
  size_t best = 0;
  for (NodeId u = 0; u < NumNodes(); ++u) best = std::max(best, InDegree(u));
  return best;
}

Graph Graph::AsUndirected() const {
  const size_t n = NumNodes();
  Graph g;
  g.labels_ = labels_;
  g.dict_ = dict_;
  g.out_offsets_.assign(n + 1, 0);
  // The undirected neighborhood of u is the sorted union of N+(u) and N-(u);
  // both inputs are already sorted in the CSR.
  std::vector<NodeId> merged;
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId u = 0; u < n; ++u) {
    auto out = OutNeighbors(u);
    auto in = InNeighbors(u);
    merged.clear();
    merged.resize(out.size() + in.size());
    auto end = std::set_union(out.begin(), out.end(), in.begin(), in.end(),
                              merged.begin());
    merged.resize(static_cast<size_t>(end - merged.begin()));
    adj[u].assign(merged.begin(), merged.end());
    g.out_offsets_[u + 1] = g.out_offsets_[u] + adj[u].size();
  }
  g.out_adj_.reserve(g.out_offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    g.out_adj_.insert(g.out_adj_.end(), adj[u].begin(), adj[u].end());
  }
  // RoleSim/WL only consume out-neighbors; in lists stay empty (§4.3).
  g.in_offsets_.assign(n + 1, 0);
  return g;
}

}  // namespace fsim
