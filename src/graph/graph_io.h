// Text serialization for labeled directed graphs.
//
// Format (one record per line, '#' starts a comment):
//   v <id> <label>        node declaration; ids must be dense from 0
//   e <src> <dst>         directed edge
#ifndef FSIM_GRAPH_GRAPH_IO_H_
#define FSIM_GRAPH_GRAPH_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"

namespace fsim {

/// Parses a graph from the text format above. If `dict` is non-null the
/// labels are interned into it (to share ids across graphs); otherwise a
/// fresh dictionary is created.
Result<Graph> LoadGraphFromString(std::string_view text,
                                  std::shared_ptr<LabelDict> dict = nullptr);

/// Loads from a file.
Result<Graph> LoadGraphFromFile(const std::string& path,
                                std::shared_ptr<LabelDict> dict = nullptr);

/// Serializes to the text format.
std::string GraphToString(const Graph& g);

/// Writes to a file.
Status SaveGraphToFile(const Graph& g, const std::string& path);

}  // namespace fsim

#endif  // FSIM_GRAPH_GRAPH_IO_H_
