// Induced subgraphs and distance-bounded balls. Strong simulation (Ma et
// al.) matches a query against the ball G[v, δQ] around every data node v;
// the pattern-matching query generator extracts random induced subgraphs.
#ifndef FSIM_GRAPH_SUBGRAPH_H_
#define FSIM_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace fsim {

/// An induced subgraph together with the node-id translation in both
/// directions.
struct Subgraph {
  Graph graph;
  /// to_parent[local] = id in the parent graph.
  std::vector<NodeId> to_parent;
  /// Parent node -> local id, or kInvalidNode if the node is not included.
  std::vector<NodeId> from_parent;
};

/// Builds the subgraph induced by `nodes` (duplicates ignored). The subgraph
/// shares the parent's label dictionary.
Subgraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Nodes whose undirected shortest distance from `center` is <= radius.
std::vector<NodeId> BallNodes(const Graph& g, NodeId center, uint32_t radius);

/// Convenience: induced subgraph of BallNodes (the G[v, δQ] of strong
/// simulation).
Subgraph Ball(const Graph& g, NodeId center, uint32_t radius);

}  // namespace fsim

#endif  // FSIM_GRAPH_SUBGRAPH_H_
