#include "graph/traversal.h"

#include <algorithm>
#include <queue>

namespace fsim {

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   bool undirected) {
  FSIM_CHECK(source < g.NumNodes());
  std::vector<uint32_t> dist(g.NumNodes(), kUnreachable);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop();
    auto visit = [&](NodeId w) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push(w);
      }
    };
    for (NodeId w : g.OutNeighbors(u)) visit(w);
    if (undirected) {
      for (NodeId w : g.InNeighbors(u)) visit(w);
    }
  }
  return dist;
}

uint32_t ExactDiameter(const Graph& g) {
  uint32_t diameter = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    auto dist = BfsDistances(g, u, /*undirected=*/true);
    for (uint32_t d : dist) {
      if (d != kUnreachable) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

std::vector<uint32_t> WeaklyConnectedComponents(const Graph& g,
                                                uint32_t* num_components) {
  std::vector<uint32_t> comp(g.NumNodes(), kUnreachable);
  uint32_t next = 0;
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    if (comp[s] != kUnreachable) continue;
    uint32_t id = next++;
    std::queue<NodeId> queue;
    comp[s] = id;
    queue.push(s);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop();
      auto visit = [&](NodeId w) {
        if (comp[w] == kUnreachable) {
          comp[w] = id;
          queue.push(w);
        }
      };
      for (NodeId w : g.OutNeighbors(u)) visit(w);
      for (NodeId w : g.InNeighbors(u)) visit(w);
    }
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

bool IsWeaklyConnected(const Graph& g) {
  if (g.NumNodes() == 0) return true;
  uint32_t count = 0;
  WeaklyConnectedComponents(g, &count);
  return count == 1;
}

}  // namespace fsim
