// The node-labeled directed graph data model of the paper (§2): G=(V,E,ℓ)
// with out-/in-neighbor access. The representation is an immutable CSR built
// once by GraphBuilder; all algorithms consume it read-only, which makes
// shared-nothing parallel iteration trivial.
#ifndef FSIM_GRAPH_GRAPH_H_
#define FSIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace fsim {

/// Dense node identifier within one graph.
using NodeId = uint32_t;
/// Interned label identifier. Two graphs sharing a LabelDict have comparable
/// label ids, which is required when computing cross-graph simulation.
using LabelId = uint32_t;

constexpr NodeId kInvalidNode = ~0U;

/// Interns label strings to dense ids. Shared (via shared_ptr) between the
/// graphs participating in one computation so that ℓ1(u) = ℓ2(v) is a plain
/// integer comparison. Interning is not thread-safe; build graphs before
/// starting parallel computations.
class LabelDict {
 public:
  /// Returns the id for `label`, interning it if new.
  LabelId Intern(std::string_view label);

  /// Returns the id for `label`, or kInvalidNode if it was never interned.
  LabelId Find(std::string_view label) const;

  /// The string for an interned id.
  std::string_view Name(LabelId id) const {
    FSIM_DCHECK(id < names_.size());
    return names_[id];
  }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> index_;
  std::vector<std::string> names_;
};

/// Immutable node-labeled directed graph in CSR form.
///
/// Neighbor lists are sorted by node id and deduplicated (simple directed
/// graph). Self-loops are permitted.
class Graph {
 public:
  Graph() = default;

  size_t NumNodes() const { return out_offsets_.empty() ? 0 : out_offsets_.size() - 1; }
  size_t NumEdges() const { return out_adj_.size(); }

  /// Total stored in-adjacency entries. Equals NumEdges() for every graph
  /// whose in-lists are the transpose of its out-lists (all GraphBuilder /
  /// IO construction); 0 for the AsUndirected adaptation, which stores the
  /// symmetric neighborhood in the out-lists only. The active-set engines
  /// use the comparison to pick the reverse-dependency walk.
  size_t NumInEdges() const { return in_adj_.size(); }

  /// N+(u): nodes w with an edge u -> w.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return {out_adj_.data() + out_offsets_[u],
            out_adj_.data() + out_offsets_[u + 1]};
  }

  /// N-(u): nodes w with an edge w -> u.
  std::span<const NodeId> InNeighbors(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return {in_adj_.data() + in_offsets_[u],
            in_adj_.data() + in_offsets_[u + 1]};
  }

  size_t OutDegree(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(NodeId u) const {
    FSIM_DCHECK(u < NumNodes());
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  LabelId Label(NodeId u) const {
    FSIM_DCHECK(u < labels_.size());
    return labels_[u];
  }

  /// The label string of node u.
  std::string_view LabelName(NodeId u) const { return dict_->Name(Label(u)); }

  /// The (shared) label dictionary. Derived graphs (subgraphs, perturbed
  /// copies) share their parent's dictionary so label ids stay comparable.
  const std::shared_ptr<LabelDict>& dict() const { return dict_; }

  /// True if the directed edge u -> v exists (binary search).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Number of distinct labels appearing in this graph (≤ dict()->size(),
  /// since the dict may be shared with other graphs).
  size_t NumDistinctLabels() const;

  /// Maximum out-degree D+ and in-degree D- (Table 1 notation).
  size_t MaxOutDegree() const;
  size_t MaxInDegree() const;
  /// Average degree d_G = |E| / |V|.
  double AverageDegree() const {
    return NumNodes() == 0
               ? 0.0
               : static_cast<double>(NumEdges()) / static_cast<double>(NumNodes());
  }

  /// Returns the undirected adaptation used by RoleSim and the WL test
  /// (§4.3): out-neighbors become the union of in- and out-neighbors, and
  /// in-neighbor lists are empty. Labels and dict are preserved.
  Graph AsUndirected() const;

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> out_offsets_;  // size NumNodes()+1
  std::vector<NodeId> out_adj_;
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_adj_;
  std::vector<LabelId> labels_;
  std::shared_ptr<LabelDict> dict_;
};

}  // namespace fsim

#endif  // FSIM_GRAPH_GRAPH_H_
