// Maximum-cardinality bipartite matching (Kuhn's augmenting paths). The
// exact dp-/bj-simulation checkers reduce the "does an injective neighbor
// mapping exist?" question to a perfect-matching test on the 0/1
// compatibility graph.
#ifndef FSIM_MATCHING_BIPARTITE_MATCHING_H_
#define FSIM_MATCHING_BIPARTITE_MATCHING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsim {

/// `adj[l]` lists the right-side nodes compatible with left node l.
/// Returns the maximum matching cardinality. When `out_match_left` is
/// non-null, (*out_match_left)[l] is the matched right node or -1.
size_t MaxBipartiteMatching(const std::vector<std::vector<uint32_t>>& adj,
                            size_t num_right,
                            std::vector<int>* out_match_left = nullptr);

}  // namespace fsim

#endif  // FSIM_MATCHING_BIPARTITE_MATCHING_H_
