// Greedy ½-approximate maximum-weight bipartite matching — the "popular
// greedy approximate of Hungarian" [Avis 1983] that the paper uses to realize
// the injective mapping operators M_dp and M_bj in
// O(|S1||S2| log(|S1||S2|)).
#ifndef FSIM_MATCHING_GREEDY_MATCHING_H_
#define FSIM_MATCHING_GREEDY_MATCHING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fsim {

/// A candidate assignment of left node `left` to right node `right`.
struct WeightedEdge {
  uint32_t left;
  uint32_t right;
  double weight;
};

/// Reusable scratch buffers so the hot loop of the FSim engine does not
/// allocate per pair.
struct MatchingScratch {
  std::vector<WeightedEdge> edges;
  std::vector<uint8_t> left_used;
  std::vector<uint8_t> right_used;
  /// Flattened row-major weight matrix for the Hungarian realization.
  std::vector<double> weights;
  /// Per-column maxima for the bisimulation operator's converse side.
  std::vector<double> col_best;
  /// Per-row maxima, indexed by original row position: the grouped
  /// operators fill these group-major, then reduce in ascending-row order
  /// so their sums are bit-identical to the nested-loop enumeration's.
  std::vector<double> row_best;
  /// Original-position -> (class, node) maps of S1, rebuilt per evaluation
  /// by the grouped product operator's ascending-row walk.
  std::vector<uint32_t> row_class;
  std::vector<uint32_t> row_node;
  /// Original-position -> node map of S2 (ascending-column walk).
  std::vector<uint32_t> col_node;
  /// Tile-evaluation state (DirectionScoreGroupedTile): one running
  /// accumulator per tile entry, plus a per-tile column-maxima arena
  /// (cumulative offsets + flattened per-entry column buffers).
  std::vector<double> tile_acc;
  std::vector<uint32_t> tile_col_offsets;
  std::vector<double> tile_col_best;
};

/// Greedily selects edges in descending weight order (ties broken by
/// (left,right) for determinism), skipping edges whose endpoint is already
/// matched. Returns the total selected weight; appends the selected pairs to
/// `out_pairs` when non-null.
///
/// Guarantees: the result is a maximal matching whose weight is at least half
/// the maximum-weight matching (classic ½-approximation bound).
double GreedyMaxWeightMatching(MatchingScratch* scratch, size_t num_left,
                               size_t num_right,
                               std::vector<std::pair<uint32_t, uint32_t>>*
                                   out_pairs = nullptr);

/// Convenience wrapper building the scratch from an explicit edge list.
double GreedyMaxWeightMatching(std::vector<WeightedEdge> edges,
                               size_t num_left, size_t num_right,
                               std::vector<std::pair<uint32_t, uint32_t>>*
                                   out_pairs = nullptr);

}  // namespace fsim

#endif  // FSIM_MATCHING_GREEDY_MATCHING_H_
