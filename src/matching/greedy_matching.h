// Greedy ½-approximate maximum-weight bipartite matching — the "popular
// greedy approximate of Hungarian" [Avis 1983] that the paper uses to realize
// the injective mapping operators M_dp and M_bj in
// O(|S1||S2| log(|S1||S2|)).
#ifndef FSIM_MATCHING_GREEDY_MATCHING_H_
#define FSIM_MATCHING_GREEDY_MATCHING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fsim {

/// A candidate assignment of left node `left` to right node `right`.
struct WeightedEdge {
  uint32_t left;
  uint32_t right;
  double weight;
};

/// Reusable scratch buffers so the hot loop of the FSim engine does not
/// allocate per pair.
struct MatchingScratch {
  std::vector<WeightedEdge> edges;
  std::vector<uint8_t> left_used;
  std::vector<uint8_t> right_used;
  /// Flattened row-major weight matrix for the Hungarian realization.
  std::vector<double> weights;
  /// Per-column maxima for the bisimulation operator's converse side.
  std::vector<double> col_best;
};

/// Greedily selects edges in descending weight order (ties broken by
/// (left,right) for determinism), skipping edges whose endpoint is already
/// matched. Returns the total selected weight; appends the selected pairs to
/// `out_pairs` when non-null.
///
/// Guarantees: the result is a maximal matching whose weight is at least half
/// the maximum-weight matching (classic ½-approximation bound).
double GreedyMaxWeightMatching(MatchingScratch* scratch, size_t num_left,
                               size_t num_right,
                               std::vector<std::pair<uint32_t, uint32_t>>*
                                   out_pairs = nullptr);

/// Convenience wrapper building the scratch from an explicit edge list.
double GreedyMaxWeightMatching(std::vector<WeightedEdge> edges,
                               size_t num_left, size_t num_right,
                               std::vector<std::pair<uint32_t, uint32_t>>*
                                   out_pairs = nullptr);

}  // namespace fsim

#endif  // FSIM_MATCHING_GREEDY_MATCHING_H_
