#include "matching/bipartite_matching.h"

#include <algorithm>

namespace fsim {

namespace {
bool TryAugment(const std::vector<std::vector<uint32_t>>& adj, uint32_t left,
                std::vector<int>* match_right, std::vector<char>* visited) {
  for (uint32_t r : adj[left]) {
    if ((*visited)[r]) continue;
    (*visited)[r] = 1;
    if ((*match_right)[r] < 0 ||
        TryAugment(adj, static_cast<uint32_t>((*match_right)[r]), match_right,
                   visited)) {
      (*match_right)[r] = static_cast<int>(left);
      return true;
    }
  }
  return false;
}
}  // namespace

size_t MaxBipartiteMatching(const std::vector<std::vector<uint32_t>>& adj,
                            size_t num_right,
                            std::vector<int>* out_match_left) {
  std::vector<int> match_right(num_right, -1);
  size_t matched = 0;
  std::vector<char> visited(num_right);
  for (uint32_t l = 0; l < adj.size(); ++l) {
    std::fill(visited.begin(), visited.end(), 0);
    if (TryAugment(adj, l, &match_right, &visited)) ++matched;
  }
  if (out_match_left != nullptr) {
    out_match_left->assign(adj.size(), -1);
    for (size_t r = 0; r < num_right; ++r) {
      if (match_right[r] >= 0) (*out_match_left)[match_right[r]] = static_cast<int>(r);
    }
  }
  return matched;
}

}  // namespace fsim
