#include "matching/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fsim {

double HungarianMaxWeightMatching(const double* w, size_t rows, size_t cols,
                                  std::vector<int>* out_assignment) {
  if (rows == 0 || cols == 0) {
    if (out_assignment != nullptr) out_assignment->assign(rows, -1);
    return 0.0;
  }

  // Pad to a square n x n cost matrix; maximize weight == minimize
  // (max_w - w). Dummy cells get weight 0 so unmatched rows/cols cost
  // nothing.
  const size_t n = std::max(rows, cols);
  double max_w = 0.0;
  for (size_t i = 0; i < rows * cols; ++i) {
    FSIM_CHECK(w[i] >= 0.0) << "Hungarian expects non-negative weights";
    max_w = std::max(max_w, w[i]);
  }
  auto weight_at = [&](size_t i, size_t j) -> double {
    if (i < rows && j < cols) return w[i * cols + j];
    return 0.0;
  };

  // Classic O(n^3) potentials-based implementation (1-indexed internals).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);    // p[j] = row matched to column j
  std::vector<size_t> way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cost = max_w - weight_at(i0 - 1, j - 1);
        double cur = cost - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  if (out_assignment != nullptr) out_assignment->assign(rows, -1);
  double total = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    size_t i = p[j];
    if (i == 0) continue;
    double x = weight_at(i - 1, j - 1);
    if (i - 1 < rows && j - 1 < cols && x > 0.0) {
      total += x;
      if (out_assignment != nullptr) {
        (*out_assignment)[i - 1] = static_cast<int>(j - 1);
      }
    }
  }
  return total;
}

double HungarianMaxWeightMatching(const std::vector<std::vector<double>>& w,
                                  std::vector<int>* out_assignment) {
  const size_t rows = w.size();
  size_t cols = 0;
  for (const auto& row : w) cols = std::max(cols, row.size());
  std::vector<double> flat(rows * cols, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    std::copy(w[i].begin(), w[i].end(), flat.begin() + i * cols);
  }
  return HungarianMaxWeightMatching(flat.data(), rows, cols, out_assignment);
}

}  // namespace fsim
