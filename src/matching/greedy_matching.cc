#include "matching/greedy_matching.h"

#include <algorithm>

namespace fsim {

namespace {

/// The greedy selection order: descending weight, ties by (left, right) for
/// determinism. A total order, so any comparison sort yields the same
/// permutation.
inline bool EdgeBefore(const WeightedEdge& a, const WeightedEdge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  if (a.left != b.left) return a.left < b.left;
  return a.right < b.right;
}

}  // namespace

double GreedyMaxWeightMatching(
    MatchingScratch* scratch, size_t num_left, size_t num_right,
    std::vector<std::pair<uint32_t, uint32_t>>* out_pairs) {
  auto& edges = scratch->edges;
  if (edges.size() <= 24) {
    // The FSim hot loop calls this with a handful of edges per neighborhood;
    // insertion sort beats std::sort's dispatch overhead at these sizes.
    for (size_t i = 1; i < edges.size(); ++i) {
      WeightedEdge e = edges[i];
      size_t j = i;
      for (; j > 0 && EdgeBefore(e, edges[j - 1]); --j) {
        edges[j] = edges[j - 1];
      }
      edges[j] = e;
    }
  } else {
    std::sort(edges.begin(), edges.end(), EdgeBefore);
  }
  scratch->left_used.assign(num_left, 0);
  scratch->right_used.assign(num_right, 0);
  double total = 0.0;
  for (const WeightedEdge& e : edges) {
    if (scratch->left_used[e.left] || scratch->right_used[e.right]) continue;
    scratch->left_used[e.left] = 1;
    scratch->right_used[e.right] = 1;
    total += e.weight;
    if (out_pairs != nullptr) out_pairs->emplace_back(e.left, e.right);
  }
  return total;
}

double GreedyMaxWeightMatching(
    std::vector<WeightedEdge> edges, size_t num_left, size_t num_right,
    std::vector<std::pair<uint32_t, uint32_t>>* out_pairs) {
  MatchingScratch scratch;
  scratch.edges = std::move(edges);
  return GreedyMaxWeightMatching(&scratch, num_left, num_right, out_pairs);
}

}  // namespace fsim
