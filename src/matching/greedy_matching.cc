#include "matching/greedy_matching.h"

#include <algorithm>

namespace fsim {

double GreedyMaxWeightMatching(
    MatchingScratch* scratch, size_t num_left, size_t num_right,
    std::vector<std::pair<uint32_t, uint32_t>>* out_pairs) {
  auto& edges = scratch->edges;
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
  scratch->left_used.assign(num_left, 0);
  scratch->right_used.assign(num_right, 0);
  double total = 0.0;
  for (const WeightedEdge& e : edges) {
    if (scratch->left_used[e.left] || scratch->right_used[e.right]) continue;
    scratch->left_used[e.left] = 1;
    scratch->right_used[e.right] = 1;
    total += e.weight;
    if (out_pairs != nullptr) out_pairs->emplace_back(e.left, e.right);
  }
  return total;
}

double GreedyMaxWeightMatching(
    std::vector<WeightedEdge> edges, size_t num_left, size_t num_right,
    std::vector<std::pair<uint32_t, uint32_t>>* out_pairs) {
  MatchingScratch scratch;
  scratch.edges = std::move(edges);
  return GreedyMaxWeightMatching(&scratch, num_left, num_right, out_pairs);
}

}  // namespace fsim
