// Exact maximum-weight bipartite matching (Hungarian / Kuhn-Munkres,
// O(n^3)). Used (a) as the optional exact realization of the injective
// mapping operators — which is what makes condition C3 of Theorem 1 hold
// exactly — and (b) as the oracle in the greedy ½-approximation property
// tests.
#ifndef FSIM_MATCHING_HUNGARIAN_H_
#define FSIM_MATCHING_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace fsim {

/// Maximum-weight matching on a dense row-major rows x cols weight matrix
/// (weights >= 0). The matching may leave nodes unmatched (equivalent to
/// matching with zero-padded dummy nodes), so the result is the true
/// maximum-weight (not necessarily perfect) matching. Returns the total
/// weight; when `out_assignment` is non-null, (*out_assignment)[row] is the
/// matched column or -1. `w` may be null only when rows * cols == 0.
double HungarianMaxWeightMatching(const double* w, size_t rows, size_t cols,
                                  std::vector<int>* out_assignment = nullptr);

/// Convenience wrapper over the flat API for a (possibly ragged)
/// vector-of-vectors matrix; short rows are padded with zero weights.
double HungarianMaxWeightMatching(const std::vector<std::vector<double>>& w,
                                  std::vector<int>* out_assignment = nullptr);

}  // namespace fsim

#endif  // FSIM_MATCHING_HUNGARIAN_H_
