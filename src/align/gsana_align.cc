#include "align/gsana_align.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "graph/traversal.h"

namespace fsim {

Alignment GsanaAlignment(const Graph& g1, const Graph& g2,
                         const GsanaOptions& opts) {
  FSIM_CHECK(g1.dict() == g2.dict());
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  Alignment out;
  out.aligned.resize(n1);
  if (n1 == 0 || n2 == 0) return out;

  // Anchors: degree-rank pairing of same-label top-degree nodes.
  auto degree_order = [](const Graph& g) {
    std::vector<NodeId> nodes(g.NumNodes());
    for (NodeId u = 0; u < g.NumNodes(); ++u) nodes[u] = u;
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      const size_t da = g.OutDegree(a) + g.InDegree(a);
      const size_t db = g.OutDegree(b) + g.InDegree(b);
      if (da != db) return da > db;
      return a < b;
    });
    return nodes;
  };
  auto order1 = degree_order(g1);
  auto order2 = degree_order(g2);
  std::vector<std::pair<NodeId, NodeId>> anchors;
  std::vector<char> taken(n2, 0);
  for (NodeId u : order1) {
    if (anchors.size() >= opts.num_anchors) break;
    for (NodeId v : order2) {
      if (taken[v] || g1.Label(u) != g2.Label(v)) continue;
      anchors.emplace_back(u, v);
      taken[v] = 1;
      break;
    }
  }
  if (anchors.empty()) return out;

  // Placement vectors: BFS distance to each anchor (undirected).
  std::vector<std::vector<uint32_t>> dist1, dist2;
  for (const auto& [a1, a2] : anchors) {
    dist1.push_back(BfsDistances(g1, a1, /*undirected=*/true));
    dist2.push_back(BfsDistances(g2, a2, /*undirected=*/true));
  }
  auto placement_distance = [&](NodeId u, NodeId v) {
    int64_t total = 0;
    for (size_t a = 0; a < anchors.size(); ++a) {
      int64_t du = dist1[a][u] == kUnreachable ? opts.unreachable_distance
                                               : dist1[a][u];
      int64_t dv = dist2[a][v] == kUnreachable ? opts.unreachable_distance
                                               : dist2[a][v];
      total += std::abs(du - dv);
    }
    return total;
  };

  // Align each node to the same-label nodes with the closest placement.
  std::vector<std::vector<NodeId>> by_label(g1.dict()->size());
  for (NodeId v = 0; v < n2; ++v) by_label[g2.Label(v)].push_back(v);
  for (NodeId u = 0; u < n1; ++u) {
    const auto& cands = by_label[g1.Label(u)];
    int64_t best = INT64_MAX;
    for (NodeId v : cands) {
      const int64_t d = placement_distance(u, v);
      if (d < best) {
        best = d;
        out.aligned[u].clear();
        out.aligned[u].push_back(v);
      } else if (d == best) {
        out.aligned[u].push_back(v);
      }
    }
  }
  return out;
}

}  // namespace fsim
