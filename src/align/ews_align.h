// EWS ("ExpandWhenStuck") percolation graph matching [47]: start from a
// small set of high-confidence seed pairs, spread "marks" from every matched
// pair to its neighbor pairs, greedily match the pair with the most marks,
// and when stuck expand the candidate set with 1-mark pairs.
#ifndef FSIM_ALIGN_EWS_ALIGN_H_
#define FSIM_ALIGN_EWS_ALIGN_H_

#include "align/alignment.h"
#include "graph/graph.h"

namespace fsim {

struct EwsOptions {
  /// Number of degree-rank seed pairs (the published algorithm assumes a
  /// handful of known-correct seeds; degree-rank matching within a label is
  /// the side-information-free analog).
  uint32_t num_seeds = 24;
  /// Minimum marks to match when not stuck.
  uint32_t mark_threshold = 2;
  /// Skip spreading from pairs whose degree product exceeds this (hub
  /// protection).
  size_t max_spread = 50000;
};

Alignment EwsAlignment(const Graph& g1, const Graph& g2,
                       const EwsOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_ALIGN_EWS_ALIGN_H_
