// FINAL-style attributed network alignment [46]: the node-pair similarity
// vector s solves s = α · D^{-1/2}(A1 ⊗ A2)D^{-1/2} s + (1-α) h, where h is
// the attribute (label) agreement prior. We iterate the fixpoint over the
// same-label candidate pairs (sparse Kronecker rows, undirected neighbors)
// and align each node to its argmax row entries.
#ifndef FSIM_ALIGN_FINAL_ALIGN_H_
#define FSIM_ALIGN_FINAL_ALIGN_H_

#include "align/alignment.h"
#include "graph/graph.h"

namespace fsim {

struct FinalOptions {
  double alpha = 0.82;      // the paper's recommended decay
  uint32_t iterations = 10;
  uint64_t pair_limit = 50'000'000;
};

Alignment FinalAlignment(const Graph& g1, const Graph& g2,
                         const FinalOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_ALIGN_FINAL_ALIGN_H_
