// GSANA-style global-structure-assisted alignment [45]: pick anchor pairs,
// place every node by its vector of BFS distances to the anchors, and align
// nodes (label-constrained) whose placements are closest.
#ifndef FSIM_ALIGN_GSANA_ALIGN_H_
#define FSIM_ALIGN_GSANA_ALIGN_H_

#include "align/alignment.h"
#include "graph/graph.h"

namespace fsim {

struct GsanaOptions {
  uint32_t num_anchors = 8;
  /// Distance assigned to unreachable nodes in the placement vectors.
  uint32_t unreachable_distance = 64;
};

Alignment GsanaAlignment(const Graph& g1, const Graph& g2,
                         const GsanaOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_ALIGN_GSANA_ALIGN_H_
