#include "align/alignment.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "exact/signatures.h"

namespace fsim {

double AlignmentF1(const Alignment& alignment, size_t num_g1_nodes) {
  FSIM_CHECK(alignment.aligned.size() >= num_g1_nodes);
  double sum = 0.0;
  for (NodeId u = 0; u < num_g1_nodes; ++u) {
    const auto& au = alignment.aligned[u];
    const bool hit = std::find(au.begin(), au.end(), u) != au.end();
    if (!hit || au.empty()) continue;
    const double pu = 1.0 / static_cast<double>(au.size());
    const double ru = 1.0;
    sum += 2.0 * pu * ru / (pu + ru);
  }
  return sum / static_cast<double>(num_g1_nodes);
}

Alignment FSimAlignment(const FSimScores& scores, size_t num_g1_nodes,
                        double tie_epsilon) {
  Alignment out;
  out.aligned.resize(num_g1_nodes);
  for (NodeId u = 0; u < num_g1_nodes; ++u) {
    auto row = scores.Row(u);
    double best = 0.0;
    for (const auto& [v, s] : row) best = std::max(best, s);
    if (best <= 0.0) continue;
    for (const auto& [v, s] : row) {
      if (s >= best - tie_epsilon) out.aligned[u].push_back(v);
    }
  }
  return out;
}

namespace {

Alignment AlignBySignatures(const std::vector<uint64_t>& sig1,
                            const std::vector<uint64_t>& sig2) {
  std::unordered_map<uint64_t, std::vector<NodeId>> groups2;
  for (NodeId v = 0; v < sig2.size(); ++v) groups2[sig2[v]].push_back(v);
  Alignment out;
  out.aligned.resize(sig1.size());
  for (NodeId u = 0; u < sig1.size(); ++u) {
    auto it = groups2.find(sig1[u]);
    if (it != groups2.end()) out.aligned[u] = it->second;
  }
  return out;
}

}  // namespace

Alignment KBisimAlignment(const Graph& g1, const Graph& g2, uint32_t k) {
  FSIM_CHECK(g1.dict() == g2.dict());
  auto sig1 = KBisimulationSignatures(g1, k);
  auto sig2 = KBisimulationSignatures(g2, k);
  return AlignBySignatures(sig1, sig2);
}

Alignment BisimAlignment(const Graph& g1, const Graph& g2) {
  auto [sig1, sig2] = BisimulationClasses(g1, g2, /*use_in_neighbors=*/true);
  return AlignBySignatures(sig1, sig2);
}

Alignment OlapAlignment(const Graph& g1, const Graph& g2, uint32_t max_depth) {
  FSIM_CHECK(g1.dict() == g2.dict());
  // Signatures per depth (out-neighbor refinement, like Olap's forward
  // bisimulation on RDF).
  std::vector<std::vector<uint64_t>> sigs1;
  std::vector<std::vector<uint64_t>> sigs2;
  for (uint32_t k = 0; k <= max_depth; ++k) {
    sigs1.push_back(KBisimulationSignatures(g1, k));
    sigs2.push_back(KBisimulationSignatures(g2, k));
  }
  std::vector<std::unordered_map<uint64_t, std::vector<NodeId>>> groups2(
      max_depth + 1);
  for (uint32_t k = 0; k <= max_depth; ++k) {
    for (NodeId v = 0; v < g2.NumNodes(); ++v) {
      groups2[k][sigs2[k][v]].push_back(v);
    }
  }
  Alignment out;
  out.aligned.resize(g1.NumNodes());
  for (NodeId u = 0; u < g1.NumNodes(); ++u) {
    // Deepest level at which u's block still has counterparts.
    for (uint32_t k = max_depth + 1; k-- > 0;) {
      auto it = groups2[k].find(sigs1[k][u]);
      if (it != groups2[k].end()) {
        out.aligned[u] = it->second;
        break;
      }
    }
  }
  return out;
}

}  // namespace fsim
