// Graph alignment core: the set-valued alignment type, the paper's F1
// (§5.4: Pu = 1/|Au| and Ru = 1 when Au contains the ground truth, else 0),
// and the simulation-family aligners — FSimχ argmax alignment,
// k-bisimulation alignment [10] and the Olap-style bisimulation-partition
// alignment [7].
#ifndef FSIM_ALIGN_ALIGNMENT_H_
#define FSIM_ALIGN_ALIGNMENT_H_

#include <vector>

#include "core/fsim_scores.h"
#include "graph/graph.h"

namespace fsim {

/// aligned[u] = the candidate set Au ⊆ V2 for node u of G1 (possibly empty).
struct Alignment {
  std::vector<std::vector<NodeId>> aligned;
};

/// The paper's alignment F1 with identity ground truth (node u of G1 is node
/// u of G2): F1 = Σ_u 2 Pu Ru / (|V1| (Pu + Ru)), with Pu = 1/|Au|, Ru = 1
/// when u ∈ Au and Pu = Ru = 0 otherwise.
double AlignmentF1(const Alignment& alignment, size_t num_g1_nodes);

/// FSim alignment: Au = argmax_v FSimχ(u, v) (all v within `tie_epsilon` of
/// the row maximum).
Alignment FSimAlignment(const FSimScores& scores, size_t num_g1_nodes,
                        double tie_epsilon = 1e-9);

/// k-bisimulation alignment: Au = {v : sig_k(u) = sig_k(v)}.
Alignment KBisimAlignment(const Graph& g1, const Graph& g2, uint32_t k);

/// Full-bisimulation alignment (partition refinement until stable,
/// out+in neighbors): the "exact bisimulation" row — collapses to (near) 0%
/// F1 across versions because the grown graph refines almost every class.
Alignment BisimAlignment(const Graph& g1, const Graph& g2);

/// Olap-style alignment [7]: refine to the *deepest* level at which the
/// node's block still has counterparts in the other graph, and align with
/// that block (adaptive-depth bisimulation matching).
Alignment OlapAlignment(const Graph& g1, const Graph& g2,
                        uint32_t max_depth = 8);

}  // namespace fsim

#endif  // FSIM_ALIGN_ALIGNMENT_H_
