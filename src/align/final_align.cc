#include "align/final_align.h"

#include <algorithm>
#include <cmath>

#include "common/flat_pair_map.h"
#include "common/logging.h"

namespace fsim {

Alignment FinalAlignment(const Graph& g1, const Graph& g2,
                         const FinalOptions& opts) {
  FSIM_CHECK(g1.dict() == g2.dict());
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  // Undirected adaptations give symmetric neighborhoods (FINAL operates on
  // undirected adjacency).
  Graph u1 = g1.AsUndirected();
  Graph u2 = g2.AsUndirected();

  // Candidate pairs: same-label only (h(u,v) = 1 on them, 0 elsewhere; pairs
  // with h = 0 keep negligible mass and are dropped, which is FINAL's own
  // attribute-based sparsification).
  std::vector<std::vector<NodeId>> by_label(g1.dict()->size());
  for (NodeId v = 0; v < n2; ++v) by_label[g2.Label(v)].push_back(v);
  std::vector<uint64_t> keys;
  for (NodeId u = 0; u < n1; ++u) {
    for (NodeId v : by_label[g1.Label(u)]) keys.push_back(PairKey(u, v));
    FSIM_CHECK(keys.size() <= opts.pair_limit) << "FINAL pair limit exceeded";
  }
  FlatPairMap index(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    index.Insert(keys[i], static_cast<uint32_t>(i));
  }

  auto inv_sqrt_deg = [](const Graph& g, NodeId u) {
    const double d = static_cast<double>(g.OutDegree(u));
    return d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
  };
  std::vector<double> isd1(n1), isd2(n2);
  for (NodeId u = 0; u < n1; ++u) isd1[u] = inv_sqrt_deg(u1, u);
  for (NodeId v = 0; v < n2; ++v) isd2[v] = inv_sqrt_deg(u2, v);

  // Attribute prior h: label agreement (already enforced by the candidate
  // set) refined by degree similarity — FINAL supports numeric node
  // attributes, and degree is the standard choice when no richer attributes
  // exist. Without it the prior is uniform on same-label pairs and the
  // fixpoint cannot break their ties.
  auto prior = [&](NodeId u, NodeId v) {
    const double d1 = static_cast<double>(u1.OutDegree(u));
    const double d2 = static_cast<double>(u2.OutDegree(v));
    if (d1 == 0.0 && d2 == 0.0) return 1.0;
    return std::min(d1, d2) / std::max(d1, d2);
  };

  std::vector<double> h(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    h[i] = prior(PairFirst(keys[i]), PairSecond(keys[i]));
  }
  std::vector<double> prev(h);
  std::vector<double> curr(keys.size(), 0.0);
  for (uint32_t iter = 0; iter < opts.iterations; ++iter) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const NodeId u = PairFirst(keys[i]);
      const NodeId v = PairSecond(keys[i]);
      double acc = 0.0;
      for (NodeId un : u1.OutNeighbors(u)) {
        for (NodeId vn : u2.OutNeighbors(v)) {
          const uint32_t j = index.Find(PairKey(un, vn));
          if (j == FlatPairMap::kNotFound) continue;
          acc += prev[j] * isd1[un] * isd2[vn];
        }
      }
      curr[i] =
          opts.alpha * isd1[u] * isd2[v] * acc + (1.0 - opts.alpha) * h[i];
    }
    prev.swap(curr);
  }

  Alignment out;
  out.aligned.resize(n1);
  std::vector<double> best(n1, 0.0);
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    if (prev[i] > best[u] + 1e-12) {
      best[u] = prev[i];
      out.aligned[u].assign(1, v);
    } else if (!out.aligned[u].empty() && prev[i] >= best[u] - 1e-12) {
      out.aligned[u].push_back(v);
    }
  }
  return out;
}

}  // namespace fsim
