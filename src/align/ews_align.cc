#include "align/ews_align.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace fsim {

namespace {

/// Top nodes by (degree, id) per label, used for the degree-rank seeds.
std::vector<NodeId> TopByDegree(const Graph& g, size_t count) {
  std::vector<NodeId> nodes(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) nodes[u] = u;
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    const size_t da = g.OutDegree(a) + g.InDegree(a);
    const size_t db = g.OutDegree(b) + g.InDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  if (nodes.size() > count) nodes.resize(count);
  return nodes;
}

}  // namespace

Alignment EwsAlignment(const Graph& g1, const Graph& g2,
                       const EwsOptions& opts) {
  FSIM_CHECK(g1.dict() == g2.dict());
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  std::vector<NodeId> match1(n1, kInvalidNode);  // u -> v
  std::vector<char> used2(n2, 0);
  std::unordered_map<uint64_t, uint32_t> marks;

  // Lazy-deletion max-heap of (marks, pair).
  using HeapEntry = std::pair<uint32_t, uint64_t>;
  std::priority_queue<HeapEntry> heap;

  auto spread = [&](NodeId u, NodeId v) {
    auto spread_dir = [&](std::span<const NodeId> s1,
                          std::span<const NodeId> s2) {
      if (s1.size() * s2.size() > opts.max_spread) return;
      for (NodeId un : s1) {
        if (match1[un] != kInvalidNode) continue;
        for (NodeId vn : s2) {
          if (used2[vn] || g1.Label(un) != g2.Label(vn)) continue;
          const uint64_t key = PairKey(un, vn);
          const uint32_t m = ++marks[key];
          heap.emplace(m, key);
        }
      }
    };
    spread_dir(g1.OutNeighbors(u), g2.OutNeighbors(v));
    spread_dir(g1.InNeighbors(u), g2.InNeighbors(v));
  };

  auto do_match = [&](NodeId u, NodeId v) {
    match1[u] = v;
    used2[v] = 1;
    spread(u, v);
  };

  // Seeds: degree-rank pairing within equal labels among the global top
  // degree nodes (the structural stand-in for known-correct seed pairs).
  auto top1 = TopByDegree(g1, opts.num_seeds * 4);
  auto top2 = TopByDegree(g2, opts.num_seeds * 4);
  uint32_t seeded = 0;
  std::vector<char> taken2(top2.size(), 0);
  for (NodeId u : top1) {
    if (seeded >= opts.num_seeds) break;
    for (size_t j = 0; j < top2.size(); ++j) {
      if (taken2[j] || g1.Label(u) != g2.Label(top2[j])) continue;
      taken2[j] = 1;
      do_match(u, top2[j]);
      ++seeded;
      break;
    }
  }

  // Percolate: match the highest-marked valid pair; when nothing reaches
  // the threshold, fall back to 1-mark pairs ("expand when stuck").
  uint32_t threshold = opts.mark_threshold;
  while (!heap.empty()) {
    auto [m, key] = heap.top();
    heap.pop();
    auto it = marks.find(key);
    if (it == marks.end() || it->second != m) continue;  // stale entry
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    if (match1[u] != kInvalidNode || used2[v]) {
      marks.erase(it);
      continue;
    }
    if (m < threshold) {
      // Stuck at this threshold: expand by accepting single-mark pairs.
      if (threshold > 1) {
        threshold = 1;
        heap.emplace(m, key);
        continue;
      }
    }
    marks.erase(it);
    do_match(u, v);
  }

  Alignment out;
  out.aligned.resize(n1);
  for (NodeId u = 0; u < n1; ++u) {
    if (match1[u] != kInvalidNode) out.aligned[u].assign(1, match1[u]);
  }
  return out;
}

}  // namespace fsim
