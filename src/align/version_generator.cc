#include "align/version_generator.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace fsim {

Graph GrowGraph(const Graph& g, uint32_t new_nodes, uint64_t new_edges,
                uint64_t seed, uint64_t removed_edges) {
  Rng rng(seed);
  GraphBuilder builder(g.dict());
  const size_t n0 = g.NumNodes();
  builder.ReserveNodes(n0 + new_nodes);
  for (NodeId u = 0; u < n0; ++u) builder.AddNodeWithLabelId(g.Label(u));

  // Keep all but a uniform sample of `removed_edges` existing edges.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(g.NumEdges());
  for (NodeId u = 0; u < n0; ++u) {
    for (NodeId v : g.OutNeighbors(u)) edges.emplace_back(u, v);
  }
  rng.Shuffle(&edges);
  if (removed_edges < edges.size()) {
    edges.resize(edges.size() - removed_edges);
  }
  std::unordered_set<uint64_t> present;
  present.reserve(edges.size() * 2 + new_edges * 2);
  for (const auto& [u, v] : edges) {
    builder.AddEdge(u, v);
    present.insert(PairKey(u, v));
  }

  // New nodes reuse the base label distribution (sample an existing node's
  // label), mimicking schema-stable RDF growth.
  for (uint32_t i = 0; i < new_nodes; ++i) {
    NodeId proto = static_cast<NodeId>(rng.NextBounded(n0));
    builder.AddNodeWithLabelId(g.Label(proto));
  }
  const size_t n1 = n0 + new_nodes;

  // Preferential targets: endpoints of existing edges land on hubs more
  // often, preserving the heavy-tailed in-degree shape as the graph grows.
  std::vector<NodeId> target_pool;
  target_pool.reserve(g.NumEdges() + n0);
  for (NodeId u = 0; u < n0; ++u) {
    target_pool.push_back(u);
    for (NodeId v : g.OutNeighbors(u)) target_pool.push_back(v);
  }

  uint64_t added = 0;
  uint64_t attempts = 0;
  while (added < new_edges && attempts < 64 * (new_edges + 1)) {
    ++attempts;
    NodeId u, v;
    const double r = rng.NextDouble();
    if (r < 0.4 && new_nodes > 0) {
      // new -> old (hub-preferring)
      u = static_cast<NodeId>(n0 + rng.NextBounded(new_nodes));
      v = target_pool[rng.NextBounded(target_pool.size())];
    } else if (r < 0.6 && new_nodes > 0) {
      // old -> new
      u = static_cast<NodeId>(rng.NextBounded(n0));
      v = static_cast<NodeId>(n0 + rng.NextBounded(new_nodes));
    } else {
      // old -> old fill-in
      u = static_cast<NodeId>(rng.NextBounded(n1));
      v = target_pool[rng.NextBounded(target_pool.size())];
    }
    if (u == v) continue;
    if (present.insert(PairKey(u, v)).second) {
      builder.AddEdge(u, v);
      ++added;
    }
  }
  return std::move(builder).BuildOrDie();
}

VersionedGraphs MakeVersionedGraphs(const VersionOptions& opts) {
  VersionedGraphs out;
  PowerLawOptions gen;
  gen.n = opts.base_nodes;
  gen.avg_degree = static_cast<double>(opts.base_edges) /
                   static_cast<double>(opts.base_nodes);
  gen.max_out_degree = 60;
  gen.max_in_degree = 300;
  gen.exponent = 2.1;
  LabelingOptions labels;
  labels.num_labels = opts.labels;
  labels.skew = 0.7;
  out.base = PowerLawGraph(gen, labels, opts.seed);

  const uint32_t step_nodes = static_cast<uint32_t>(
      opts.node_growth * static_cast<double>(opts.base_nodes));
  const uint64_t step_edges = static_cast<uint64_t>(
      opts.edge_growth * static_cast<double>(out.base.NumEdges()));
  const uint64_t step_removed = static_cast<uint64_t>(
      opts.rewire_fraction * static_cast<double>(out.base.NumEdges()));
  out.v2 = GrowGraph(out.base, step_nodes, step_edges + step_removed,
                     opts.seed ^ 0x22, step_removed);
  out.v3 = GrowGraph(out.v2, step_nodes, step_edges + step_removed,
                     opts.seed ^ 0x33, step_removed);
  return out;
}

}  // namespace fsim
