// Evolving graph versions for the RDF-alignment case study (Table 9). The
// paper aligns three snapshots of a biological RDF graph whose URIs are
// stable over time; we substitute generated versions that grow from a common
// base — node ids are preserved, so the identity map is the alignment ground
// truth (exactly the role the stable URIs played).
#ifndef FSIM_ALIGN_VERSION_GENERATOR_H_
#define FSIM_ALIGN_VERSION_GENERATOR_H_

#include <cstdint>

#include "graph/graph.h"

namespace fsim {

struct VersionOptions {
  uint32_t base_nodes = 3000;
  uint64_t base_edges = 7000;
  uint32_t labels = 8;        // the GP graphs have 8 node labels
  double node_growth = 0.05;  // per version step
  double edge_growth = 0.06;
  /// Fraction of existing edges replaced per step (curation churn in the
  /// real RDF versions, not only growth). 0 = pure growth.
  double rewire_fraction = 0.0;
  uint64_t seed = 0x6E0;
};

/// Three versions; node i of `base` is node i of v2 and v3.
struct VersionedGraphs {
  Graph base;  // G1
  Graph v2;    // G2 = G1 grown one step
  Graph v3;    // G3 = G2 grown one step
};

VersionedGraphs MakeVersionedGraphs(const VersionOptions& opts = {});

/// Grows `g` by adding `new_nodes` nodes and `new_edges` edges (new->old
/// attachments preferring high-degree targets, plus old->old fill-in), and
/// removes `removed_edges` uniformly chosen existing edges. Existing node
/// ids are preserved; the dictionary is shared.
Graph GrowGraph(const Graph& g, uint32_t new_nodes, uint64_t new_edges,
                uint64_t seed, uint64_t removed_edges = 0);

}  // namespace fsim

#endif  // FSIM_ALIGN_VERSION_GENERATOR_H_
