// Splitter-queue partition refinement (Kanellakis-Smolka / Paige-Tarjan
// family, the algorithmic line of the paper's related work [48]): computes
// the coarsest partition of V(G) that is stable w.r.t. the neighbor
// structure, without the 64-bit-hash caveat of the signature-based
// refinement in exact/signatures.h.
//
// Two stability semantics are supported:
//
//  * kSet — two nodes stay together iff they have the same label and their
//    neighbor sets hit exactly the same blocks. The coarsest set-stable
//    partition over out- AND in-neighbors is precisely the equivalence
//    induced by the paper's maximal bisimulation (χ = b) on a single graph
//    (bisimilarity is an equivalence, and its classes are the coarsest
//    stable partition — Kanellakis-Smolka).
//
//  * kCounting — two nodes stay together iff they have the same label and
//    the same *number* of neighbors in every block. Counting-stable
//    refinement over the undirected adaptation is exactly Weisfeiler-Lehman
//    color refinement (Theorem 5's other side), and with both directions it
//    is the equivalence induced by bijective simulation (χ = bj) on a
//    single graph.
//
// Both are verified against the independent implementations (signature
// refinement, WL colors, the greatest-fixpoint exact checkers) by
// tests/partition_test.cc.
#ifndef FSIM_EXACT_PARTITION_REFINEMENT_H_
#define FSIM_EXACT_PARTITION_REFINEMENT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// Which stability notion the refinement enforces.
enum class RefinementSemantics {
  kSet,       // same blocks reached (bisimulation)
  kCounting,  // same multiplicity into every block (WL / bijective)
};

/// The result of a refinement run.
struct Partition {
  /// block_of[u] in [0, num_blocks); nodes in the same block are equivalent.
  std::vector<uint32_t> block_of;
  size_t num_blocks = 0;
  /// Number of splitter blocks processed (work measure).
  size_t splitters_processed = 0;

  bool SameBlock(NodeId u, NodeId v) const {
    return block_of[u] == block_of[v];
  }
};

/// Computes the coarsest partition of g stable under `semantics`,
/// considering out-neighbors and, when `use_in_neighbors`, in-neighbors.
/// The initial partition groups nodes by label.
Partition CoarsestStablePartition(const Graph& g, RefinementSemantics semantics,
                                  bool use_in_neighbors = true);

/// Convenience: the bisimulation equivalence classes of g (set semantics,
/// both directions) — the paper's u ~b v on a single graph.
Partition BisimulationPartition(const Graph& g);

}  // namespace fsim

#endif  // FSIM_EXACT_PARTITION_REFINEMENT_H_
