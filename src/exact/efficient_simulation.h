// Worklist-based maximum simple-simulation computation in the style of
// Henzinger-Henzinger-Kopke (and its modern refinements, cf. Ranzato [48]):
// instead of re-checking every surviving pair per round (the naive greatest
// fixpoint in exact_simulation.h), maintains per-(node, candidate) counters
// of "supporting" neighbors and cascades removals — each edge pair is
// processed O(1) times, giving O(|V1||V2| + |E1||E2|/avg) style behaviour
// instead of O(rounds * |R| * d^2).
//
// Only the simple variant (χ = s) is supported: the injective variants'
// conditions are matching problems and do not decompose into counters.
#ifndef FSIM_EXACT_EFFICIENT_SIMULATION_H_
#define FSIM_EXACT_EFFICIENT_SIMULATION_H_

#include "exact/exact_simulation.h"
#include "graph/graph.h"

namespace fsim {

/// Maximum simple simulation between G1 and G2 (same contract as
/// MaxSimulation(g1, g2, SimVariant::kSimple), validated against it by
/// property tests), computed with the counting/worklist algorithm.
BinaryRelation MaxSimulationEfficient(const Graph& g1, const Graph& g2);

}  // namespace fsim

#endif  // FSIM_EXACT_EFFICIENT_SIMULATION_H_
