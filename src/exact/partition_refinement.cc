#include "exact/partition_refinement.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/logging.h"

namespace fsim {

namespace {

/// Mutable partition state: per-block member lists plus the reverse map.
struct RefinementState {
  std::vector<std::vector<NodeId>> members;
  std::vector<uint32_t> block_of;
  std::deque<uint32_t> worklist;
  std::vector<uint8_t> in_worklist;

  void Push(uint32_t block) {
    if (block >= in_worklist.size()) in_worklist.resize(block + 1, 0);
    if (in_worklist[block]) return;
    in_worklist[block] = 1;
    worklist.push_back(block);
  }

  uint32_t Pop() {
    uint32_t block = worklist.front();
    worklist.pop_front();
    in_worklist[block] = 0;
    return block;
  }
};

/// Splits every block containing a touched node by the per-node key
/// (semantics-dependent), pushing all fragments of every block that
/// actually splits (the conservative Kanellakis-Smolka policy, which is
/// correct for both set and counting stability).
void SplitTouchedBlocks(RefinementState* state,
                        const std::vector<NodeId>& touched,
                        const std::vector<uint32_t>& count,
                        RefinementSemantics semantics) {
  // Deduplicate the touched blocks.
  std::vector<uint32_t> touched_blocks;
  for (NodeId u : touched) {
    uint32_t b = state->block_of[u];
    if (std::find(touched_blocks.begin(), touched_blocks.end(), b) ==
        touched_blocks.end()) {
      touched_blocks.push_back(b);
    }
  }

  for (uint32_t b : touched_blocks) {
    std::vector<NodeId>& block = state->members[b];
    if (block.size() <= 1) continue;

    // Key of a member: 0 if it has no edge into the splitter; otherwise 1
    // (set semantics) or the edge count (counting semantics).
    auto key_of = [&](NodeId u) -> uint32_t {
      uint32_t c = count[u];
      if (semantics == RefinementSemantics::kSet) return c > 0 ? 1 : 0;
      return c;
    };

    // Group members by key, ascending, for deterministic block numbering.
    std::vector<std::pair<uint32_t, NodeId>> keyed;
    keyed.reserve(block.size());
    bool uniform = true;
    const uint32_t first_key = key_of(block[0]);
    for (NodeId u : block) {
      uint32_t k = key_of(u);
      if (k != first_key) uniform = false;
      keyed.emplace_back(k, u);
    }
    if (uniform) continue;
    std::sort(keyed.begin(), keyed.end());

    // The first group keeps id b; subsequent groups get fresh ids.
    block.clear();
    uint32_t current_block = b;
    uint32_t current_key = keyed[0].first;
    for (const auto& [k, u] : keyed) {
      if (k != current_key) {
        current_key = k;
        current_block = static_cast<uint32_t>(state->members.size());
        state->members.emplace_back();
      }
      state->members[current_block].push_back(u);
      state->block_of[u] = current_block;
    }

    // Conservative push: every fragment (including the retained id) may be
    // a new splitter.
    state->Push(b);
    for (uint32_t nb = current_block; nb > b && nb < state->members.size();
         ++nb) {
      if (!state->members[nb].empty()) state->Push(nb);
    }
  }
}

}  // namespace

Partition CoarsestStablePartition(const Graph& g,
                                  RefinementSemantics semantics,
                                  bool use_in_neighbors) {
  const size_t n = g.NumNodes();
  Partition result;
  result.block_of.assign(n, 0);
  if (n == 0) return result;

  RefinementState state;
  state.block_of.assign(n, 0);

  // Initial partition: group by label id.
  {
    std::vector<std::pair<LabelId, NodeId>> by_label;
    by_label.reserve(n);
    for (NodeId u = 0; u < n; ++u) by_label.emplace_back(g.Label(u), u);
    std::sort(by_label.begin(), by_label.end());
    for (const auto& [label, u] : by_label) {
      if (state.members.empty() ||
          g.Label(state.members.back().front()) != label) {
        state.members.emplace_back();
      }
      state.members.back().push_back(u);
      state.block_of[u] = static_cast<uint32_t>(state.members.size() - 1);
    }
  }
  for (uint32_t b = 0; b < state.members.size(); ++b) state.Push(b);

  // Scratch: per-node edge count into the current splitter, reset via the
  // touched list (O(touched), not O(n), per splitter).
  std::vector<uint32_t> count(n, 0);
  std::vector<NodeId> touched;

  while (!state.worklist.empty()) {
    const uint32_t splitter = state.Pop();
    ++result.splitters_processed;
    // Snapshot: the splitter's member list may be rewritten if it splits
    // below; the split against the pre-split members is still a valid (and
    // conservatively re-queued) refinement step.
    std::vector<NodeId> splitter_nodes = state.members[splitter];

    // Direction 1: split by out-edges into the splitter. u reaches w in S
    // via u -> w, so the candidates are the in-neighbors of S's members.
    touched.clear();
    for (NodeId w : splitter_nodes) {
      for (NodeId u : g.InNeighbors(w)) {
        if (count[u] == 0) touched.push_back(u);
        ++count[u];
      }
    }
    SplitTouchedBlocks(&state, touched, count, semantics);
    for (NodeId u : touched) count[u] = 0;

    if (use_in_neighbors) {
      // Direction 2: split by in-edges from the splitter (w -> u, w in S).
      touched.clear();
      for (NodeId w : splitter_nodes) {
        for (NodeId u : g.OutNeighbors(w)) {
          if (count[u] == 0) touched.push_back(u);
          ++count[u];
        }
      }
      SplitTouchedBlocks(&state, touched, count, semantics);
      for (NodeId u : touched) count[u] = 0;
    }
  }

  // Renumber blocks densely in order of first appearance by node id.
  std::vector<uint32_t> rename(state.members.size(), kInvalidNode);
  uint32_t next = 0;
  for (NodeId u = 0; u < n; ++u) {
    uint32_t b = state.block_of[u];
    if (rename[b] == kInvalidNode) rename[b] = next++;
    result.block_of[u] = rename[b];
  }
  result.num_blocks = next;
  return result;
}

Partition BisimulationPartition(const Graph& g) {
  return CoarsestStablePartition(g, RefinementSemantics::kSet,
                                 /*use_in_neighbors=*/true);
}

}  // namespace fsim
