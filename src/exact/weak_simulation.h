// Weak simulation (Milner [3]) — the second k-hop-flavored variant the paper
// names as future work (§6), adapted to node-labeled graphs: a designated
// set of *internal* labels plays the role of the process-algebra τ action,
// and one weak step u ⇒ w is a directed path u -> t1 -> ... -> tm -> w
// (m >= 0) whose intermediate nodes t1..tm are all internal. Weak simulation
// is then simple simulation over weak steps: a neighbor of u may be matched
// by any node v reaches through internal detours.
//
// With an empty internal set, a weak step is exactly an edge and weak
// simulation coincides with simple simulation (tested); growing the internal
// set only coarsens the relation.
//
// Realized by reduction: WeakClosure materializes the weak-step graph, and
// both the exact relation and the fractional FSimχ quantification are
// obtained by running the existing machinery on the closure — the same
// route the paper suggests for incorporating k-hop variants into FSimχ.
#ifndef FSIM_EXACT_WEAK_SIMULATION_H_
#define FSIM_EXACT_WEAK_SIMULATION_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "exact/exact_simulation.h"
#include "graph/graph.h"

namespace fsim {

/// Marks every node whose label is in `internal_labels` (by string).
/// Unknown label strings are ignored (they mark no node).
std::vector<uint8_t> InternalMaskFromLabels(
    const Graph& g, const std::vector<std::string_view>& internal_labels);

/// The weak-step graph: an edge (u, w) for every weak step u ⇒ w of g, i.e.
/// every non-empty path whose intermediate nodes are internal and whose
/// endpoint w is the first non-internal node reached — plus, for paths that
/// end in an internal node with no observable continuation, no edge.
/// Endpoints u may be internal or not; internal_mask.size() must equal
/// |V(g)|. Self-loops arising from internal cycles are kept.
///
/// The closure is computed by a per-node forward search through internal
/// nodes; worst case O(|V| * |E|) when the internal subgraph is large.
Result<Graph> WeakClosure(const Graph& g,
                          const std::vector<uint8_t>& internal_mask);

/// Maximum weak simulation of g1 in g2: simple simulation over the two
/// weak-step graphs. Masks must match the respective graphs.
Result<BinaryRelation> MaxWeakSimulation(
    const Graph& g1, const std::vector<uint8_t>& internal_mask1,
    const Graph& g2, const std::vector<uint8_t>& internal_mask2);

}  // namespace fsim

#endif  // FSIM_EXACT_WEAK_SIMULATION_H_
