#include "exact/efficient_simulation.h"

#include <deque>
#include <vector>

#include "common/logging.h"

namespace fsim {

namespace {

/// Index into the flat (u, v) counter arrays.
inline size_t Idx(size_t n2, NodeId u, NodeId v) {
  return static_cast<size_t>(u) * n2 + v;
}

}  // namespace

BinaryRelation MaxSimulationEfficient(const Graph& g1, const Graph& g2) {
  FSIM_CHECK(g1.dict() == g2.dict());
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  BinaryRelation rel(n1, n2);

  // support_out[(u', v)] = |{v' in N+(v) : (u', v') in R}| — the number of
  // v-successors that can still simulate u'. The pair (u, v) is valid only
  // if support_out[(u', v)] > 0 for every u' in N+(u) (Definition 1, cond.
  // 2), and symmetrically for in-neighbors.
  std::vector<uint32_t> support_out(n1 * n2, 0);
  std::vector<uint32_t> support_in(n1 * n2, 0);

  // Initialize R with label-equal pairs and fill the counters.
  for (NodeId u = 0; u < n1; ++u) {
    for (NodeId v = 0; v < n2; ++v) {
      if (g1.Label(u) == g2.Label(v)) rel.Set(u, v, true);
    }
  }
  for (NodeId up = 0; up < n1; ++up) {
    for (NodeId v = 0; v < n2; ++v) {
      uint32_t out_count = 0;
      for (NodeId vp : g2.OutNeighbors(v)) {
        if (rel.Contains(up, vp)) ++out_count;
      }
      support_out[Idx(n2, up, v)] = out_count;
      uint32_t in_count = 0;
      for (NodeId vp : g2.InNeighbors(v)) {
        if (rel.Contains(up, vp)) ++in_count;
      }
      support_in[Idx(n2, up, v)] = in_count;
    }
  }

  // Seed the removal queue with initially invalid pairs.
  std::deque<uint64_t> queue;
  auto pair_key = [&](NodeId u, NodeId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  };
  auto is_valid = [&](NodeId u, NodeId v) {
    for (NodeId up : g1.OutNeighbors(u)) {
      if (support_out[Idx(n2, up, v)] == 0) return false;
    }
    for (NodeId up : g1.InNeighbors(u)) {
      if (support_in[Idx(n2, up, v)] == 0) return false;
    }
    return true;
  };
  for (NodeId u = 0; u < n1; ++u) {
    for (NodeId v = 0; v < n2; ++v) {
      if (rel.Contains(u, v) && !is_valid(u, v)) {
        queue.push_back(pair_key(u, v));
      }
    }
  }

  // Cascade: removing (u, v) decrements the support of (u, pred/succ of v)
  // counters; any pair whose support hits zero and whose left node needs
  // that support becomes invalid.
  while (!queue.empty()) {
    const uint64_t key = queue.front();
    queue.pop_front();
    const NodeId u = static_cast<NodeId>(key >> 32);
    const NodeId v = static_cast<NodeId>(key & 0xFFFFFFFFULL);
    if (!rel.Contains(u, v)) continue;  // already removed
    rel.Set(u, v, false);

    // v no longer simulates u: every v_pred with v in N+(v_pred) loses one
    // unit of support_out[(u, v_pred)].
    for (NodeId v_pred : g2.InNeighbors(v)) {
      uint32_t& count = support_out[Idx(n2, u, v_pred)];
      FSIM_DCHECK(count > 0);
      if (--count == 0) {
        // Pairs (x, v_pred) with u in N+(x) just became invalid.
        for (NodeId x : g1.InNeighbors(u)) {
          if (rel.Contains(x, v_pred)) queue.push_back(pair_key(x, v_pred));
        }
      }
    }
    for (NodeId v_succ : g2.OutNeighbors(v)) {
      uint32_t& count = support_in[Idx(n2, u, v_succ)];
      FSIM_DCHECK(count > 0);
      if (--count == 0) {
        for (NodeId x : g1.OutNeighbors(u)) {
          if (rel.Contains(x, v_succ)) queue.push_back(pair_key(x, v_succ));
        }
      }
    }
  }
  return rel;
}

}  // namespace fsim
