#include "exact/bounded_simulation.h"

#include <queue>
#include <vector>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace fsim {

Graph BoundedClosure(const Graph& g, uint32_t k) {
  FSIM_CHECK(k >= 1);
  GraphBuilder builder(g.dict());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    builder.AddNodeWithLabelId(g.Label(u));
  }
  // Bounded BFS from every node over out-edges.
  std::vector<uint32_t> dist(g.NumNodes());
  for (NodeId source = 0; source < g.NumNodes(); ++source) {
    std::fill(dist.begin(), dist.end(), ~0U);
    std::queue<NodeId> queue;
    dist[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      if (dist[u] == k) continue;
      for (NodeId w : g.OutNeighbors(u)) {
        if (dist[w] != ~0U) continue;
        dist[w] = dist[u] + 1;
        queue.push(w);
        if (w != source) builder.AddEdge(source, w);
      }
    }
  }
  return std::move(builder).BuildOrDie();
}

BinaryRelation MaxBoundedSimulation(const Graph& query, const Graph& data,
                                    uint32_t k) {
  Graph closure = BoundedClosure(data, k);
  return MaxSimulation(query, closure, SimVariant::kSimple);
}

}  // namespace fsim
