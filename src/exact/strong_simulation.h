// Strong simulation (Ma et al. [1,6]) for subgraph pattern matching: a match
// of query Q at data node w exists if the ball G[w, δQ] (induced subgraph of
// the nodes within the query's diameter δQ of w) admits a maximum simulation
// R between Q and the ball that covers every query node and contains w.
//
// Implementation note: R must be contained in the global maximum simulation
// between Q and G, so centers are pre-filtered to nodes that globally
// simulate some query node — the standard optimization that keeps the
// per-ball fixpoint affordable.
#ifndef FSIM_EXACT_STRONG_SIMULATION_H_
#define FSIM_EXACT_STRONG_SIMULATION_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// One strong-simulation match (one qualifying ball).
struct StrongSimMatch {
  /// The ball center in data-graph ids.
  NodeId center = kInvalidNode;
  /// For each query node q, the data nodes (parent ids) simulating q inside
  /// the ball.
  std::vector<std::vector<NodeId>> query_matches;
  /// Union of all matched data nodes (sorted, deduplicated).
  std::vector<NodeId> matched_nodes;
};

struct StrongSimOptions {
  /// Stop after this many matches (0 = unbounded).
  size_t max_results = 0;
  /// Skip balls larger than this many nodes (0 = unbounded). Guards against
  /// degenerate balls that span a hub-dominated graph.
  size_t max_ball_size = 0;
  /// Fraction of query nodes that must be matched inside the ball for it to
  /// qualify. 1.0 is Ma et al.'s original criterion ("R contains all nodes
  /// in Q"); lower values allow partial matches — the reproduction's
  /// noise-tolerant relaxation used when exact matches cannot exist (see
  /// DESIGN.md).
  double min_coverage = 1.0;
  /// Evenly subsample the candidate centers down to this many (0 = all).
  /// Bounds the cost of partial-coverage runs, whose label-based center
  /// filter is much weaker than the exact global-simulation filter.
  size_t max_centers = 0;
};

/// All strong-simulation matches of `query` in `data` (graphs must share a
/// LabelDict). Matches are ordered by ascending |matched_nodes| (tighter
/// matches first), then by center id.
std::vector<StrongSimMatch> StrongSimulation(const Graph& query,
                                             const Graph& data,
                                             const StrongSimOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_EXACT_STRONG_SIMULATION_H_
