#include "exact/signatures.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace fsim {

namespace {

constexpr uint64_t kLabelSeed = 0x5CA1AB1E0DDBA11ULL;

std::vector<uint64_t> InitialSignatures(const Graph& g) {
  std::vector<uint64_t> sig(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    sig[u] = Mix64(kLabelSeed ^ g.Label(u));
  }
  return sig;
}

/// One refinement round. `set_semantics` deduplicates neighbor signatures
/// (bisimulation); multiset semantics keeps duplicates (WL).
std::vector<uint64_t> RefineOnce(const Graph& g,
                                 const std::vector<uint64_t>& sig,
                                 bool use_in_neighbors, bool set_semantics) {
  std::vector<uint64_t> next(g.NumNodes());
  std::vector<uint64_t> nbr;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    uint64_t h = HashCombine(0x9E3779B97F4A7C15ULL, sig[u]);
    auto fold = [&](std::span<const NodeId> nbrs, uint64_t direction_tag) {
      nbr.clear();
      for (NodeId w : nbrs) nbr.push_back(sig[w]);
      std::sort(nbr.begin(), nbr.end());
      if (set_semantics) {
        nbr.erase(std::unique(nbr.begin(), nbr.end()), nbr.end());
      }
      h = HashCombine(h, direction_tag);
      for (uint64_t s : nbr) h = HashCombine(h, s);
    };
    fold(g.OutNeighbors(u), 0xF00DULL);
    if (use_in_neighbors) fold(g.InNeighbors(u), 0xBEEFULL);
    next[u] = h;
  }
  return next;
}

size_t CountDistinct(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  std::vector<uint64_t> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all.size();
}

std::pair<std::vector<uint64_t>, std::vector<uint64_t>> RefineUntilStable(
    const Graph& g1, const Graph& g2, bool use_in_neighbors,
    bool set_semantics, uint32_t max_rounds) {
  auto sig1 = InitialSignatures(g1);
  auto sig2 = InitialSignatures(g2);
  size_t distinct = CountDistinct(sig1, sig2);
  const uint32_t bound =
      max_rounds > 0
          ? max_rounds
          : static_cast<uint32_t>(g1.NumNodes() + g2.NumNodes() + 1);
  for (uint32_t round = 0; round < bound; ++round) {
    auto next1 = RefineOnce(g1, sig1, use_in_neighbors, set_semantics);
    auto next2 = RefineOnce(g2, sig2, use_in_neighbors, set_semantics);
    size_t next_distinct = CountDistinct(next1, next2);
    if (next_distinct == distinct && max_rounds == 0) {
      // Partition stable: the previous signatures already induce the
      // coarsest stable partition. Return them (values from the same round
      // so they stay cross-graph comparable).
      return {std::move(sig1), std::move(sig2)};
    }
    sig1 = std::move(next1);
    sig2 = std::move(next2);
    distinct = next_distinct;
  }
  return {std::move(sig1), std::move(sig2)};
}

}  // namespace

std::vector<uint64_t> KBisimulationSignatures(const Graph& g, uint32_t k) {
  auto sig = InitialSignatures(g);
  for (uint32_t round = 0; round < k; ++round) {
    sig = RefineOnce(g, sig, /*use_in_neighbors=*/false,
                     /*set_semantics=*/true);
  }
  return sig;
}

std::pair<std::vector<uint64_t>, std::vector<uint64_t>> BisimulationClasses(
    const Graph& g1, const Graph& g2, bool use_in_neighbors,
    uint32_t max_rounds) {
  FSIM_CHECK(g1.dict() == g2.dict());
  return RefineUntilStable(g1, g2, use_in_neighbors, /*set_semantics=*/true,
                           max_rounds);
}

std::vector<uint64_t> WLColors(const Graph& g, uint32_t max_rounds) {
  auto [sig, unused] = RefineUntilStable(g, g, /*use_in_neighbors=*/false,
                                         /*set_semantics=*/false, max_rounds);
  return sig;
}

std::pair<std::vector<uint64_t>, std::vector<uint64_t>> WLColors2(
    const Graph& g1, const Graph& g2, uint32_t max_rounds) {
  FSIM_CHECK(g1.dict() == g2.dict());
  return RefineUntilStable(g1, g2, /*use_in_neighbors=*/false,
                           /*set_semantics=*/false, max_rounds);
}

}  // namespace fsim
