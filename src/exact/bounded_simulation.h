// Bounded simulation (Fan et al. [5]) — one of the k-hop variants the paper
// names as future work for the framework (§6): a query edge (u, u') is
// satisfied not only by a data edge but by any directed path of length <= k
// from v to v'. Equivalently, it is simple simulation where the data graph's
// neighbor sets are replaced by bounded-reachability sets.
//
// Included both as the exact relation and as an FSimχ front end: feeding the
// k-hop closure of the data graph to ComputeFSim quantifies bounded
// simulation fractionally, which is exactly the paper's suggested extension
// route.
#ifndef FSIM_EXACT_BOUNDED_SIMULATION_H_
#define FSIM_EXACT_BOUNDED_SIMULATION_H_

#include <cstdint>

#include "exact/exact_simulation.h"
#include "graph/graph.h"

namespace fsim {

/// The k-hop closure of g: an edge (u, w) for every w reachable from u by a
/// directed path of 1..k edges (w != u). k = 1 returns an equal graph.
/// Intended for small k on sparse graphs (the closure densifies quickly).
Graph BoundedClosure(const Graph& g, uint32_t k);

/// Maximum bounded simulation of `query` in `data` with path bound k:
/// query edges must map to data paths of length <= k (in both directions).
/// Computed as MaxSimulation(query, BoundedClosure(data, k), kSimple).
BinaryRelation MaxBoundedSimulation(const Graph& query, const Graph& data,
                                    uint32_t k);

}  // namespace fsim

#endif  // FSIM_EXACT_BOUNDED_SIMULATION_H_
