#include "exact/weak_simulation.h"

#include <algorithm>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace fsim {

std::vector<uint8_t> InternalMaskFromLabels(
    const Graph& g, const std::vector<std::string_view>& internal_labels) {
  std::vector<uint8_t> mask(g.NumNodes(), 0);
  std::vector<LabelId> ids;
  for (std::string_view label : internal_labels) {
    LabelId id = g.dict()->Find(label);
    if (id != kInvalidNode) ids.push_back(id);
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (std::find(ids.begin(), ids.end(), g.Label(u)) != ids.end()) {
      mask[u] = 1;
    }
  }
  return mask;
}

Result<Graph> WeakClosure(const Graph& g,
                          const std::vector<uint8_t>& internal_mask) {
  if (internal_mask.size() != g.NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("internal mask has %zu entries for a graph with %zu nodes",
                  internal_mask.size(), g.NumNodes()));
  }
  const size_t n = g.NumNodes();
  GraphBuilder b(g.dict());
  b.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) b.AddNodeWithLabelId(g.Label(u));

  // Per-source forward search: expand through internal nodes, emit an edge
  // to every first non-internal node reached. `visited` marks expanded
  // internal nodes; `emitted` deduplicates targets. Both are reset via
  // touch-lists so the per-source cost is output-sensitive.
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint8_t> emitted(n, 0);
  std::vector<NodeId> stack;
  std::vector<NodeId> touched_visited;
  std::vector<NodeId> touched_emitted;

  for (NodeId u = 0; u < n; ++u) {
    stack.assign(1, u);
    // The source itself is "expanded", but only as a starting point: if u is
    // internal we must not treat it as already-visited-target.
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      for (NodeId w : g.OutNeighbors(x)) {
        if (internal_mask[w]) {
          if (!visited[w]) {
            visited[w] = 1;
            touched_visited.push_back(w);
            stack.push_back(w);
          }
        } else if (!emitted[w]) {
          emitted[w] = 1;
          touched_emitted.push_back(w);
          b.AddEdge(u, w);
        }
      }
    }
    for (NodeId w : touched_visited) visited[w] = 0;
    for (NodeId w : touched_emitted) emitted[w] = 0;
    touched_visited.clear();
    touched_emitted.clear();
  }
  return std::move(b).Build();
}

Result<BinaryRelation> MaxWeakSimulation(
    const Graph& g1, const std::vector<uint8_t>& internal_mask1,
    const Graph& g2, const std::vector<uint8_t>& internal_mask2) {
  if (g1.dict() != g2.dict()) {
    return Status::InvalidArgument("graphs must share one LabelDict");
  }
  FSIM_ASSIGN_OR_RETURN(Graph closure1, WeakClosure(g1, internal_mask1));
  FSIM_ASSIGN_OR_RETURN(Graph closure2, WeakClosure(g2, internal_mask2));
  return MaxSimulation(closure1, closure2, SimVariant::kSimple);
}

}  // namespace fsim
