// Exact ("yes-or-no") χ-simulation for all four variants of the paper
// (Definitions 1-3): simple (s), degree-preserving (dp), bi (b) and the
// paper's new bijective (bj) simulation. Computed as the greatest fixpoint of
// condition-checking over the same-label pair relation; the per-pair
// conditions are monotone in R, so the fixpoint is the *maximum*
// χ-simulation and u ⇝χ v ⟺ (u,v) ∈ MaxSimulation(G1, G2, χ).
#ifndef FSIM_EXACT_EXACT_SIMULATION_H_
#define FSIM_EXACT_EXACT_SIMULATION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// The four χ-simulation variants (Definition 2/3). Figure 3(a): dp has
/// injective neighbor mapping, b has converse invariance, bj has both.
enum class SimVariant : int {
  kSimple = 0,
  kDegreePreserving = 1,
  kBi = 2,
  kBijective = 3,
};

/// "s" / "dp" / "b" / "bj".
const char* SimVariantName(SimVariant v);

/// True if the variant has the converse-invariance property (u ⇝ v implies
/// v ⇝ u): bisimulation and bijective simulation.
bool HasConverseInvariance(SimVariant v);

/// Dense binary relation over V1 x V2.
class BinaryRelation {
 public:
  BinaryRelation(size_t n1, size_t n2)
      : n1_(n1), n2_(n2), bits_(n1 * n2, 0) {}

  bool Contains(NodeId u, NodeId v) const {
    return bits_[static_cast<size_t>(u) * n2_ + v] != 0;
  }
  void Set(NodeId u, NodeId v, bool present) {
    bits_[static_cast<size_t>(u) * n2_ + v] = present ? 1 : 0;
  }
  size_t CountPairs() const;
  size_t n1() const { return n1_; }
  size_t n2() const { return n2_; }

 private:
  size_t n1_;
  size_t n2_;
  std::vector<uint8_t> bits_;
};

/// Computes the maximum χ-simulation relation between G1 and G2. The graphs
/// must share a label dictionary (pass the same graph twice for self-
/// simulation; G1 = G2 is explicitly allowed by the paper).
BinaryRelation MaxSimulation(const Graph& g1, const Graph& g2,
                             SimVariant variant);

/// Convenience: u ⇝χ v?
bool Simulates(const Graph& g1, const Graph& g2, SimVariant variant, NodeId u,
               NodeId v);

}  // namespace fsim

#endif  // FSIM_EXACT_EXACT_SIMULATION_H_
