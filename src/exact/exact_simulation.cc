#include "exact/exact_simulation.h"

#include <algorithm>
#include <span>

#include "common/logging.h"
#include "matching/bipartite_matching.h"

namespace fsim {

const char* SimVariantName(SimVariant v) {
  switch (v) {
    case SimVariant::kSimple:
      return "s";
    case SimVariant::kDegreePreserving:
      return "dp";
    case SimVariant::kBi:
      return "b";
    case SimVariant::kBijective:
      return "bj";
  }
  return "?";
}

bool HasConverseInvariance(SimVariant v) {
  return v == SimVariant::kBi || v == SimVariant::kBijective;
}

size_t BinaryRelation::CountPairs() const {
  size_t count = 0;
  for (uint8_t b : bits_) count += b;
  return count;
}

namespace {

/// ∀x∈s1 ∃y∈s2: R(x,y)  (the coverage condition of Definition 1).
bool CoveredForward(const BinaryRelation& rel, std::span<const NodeId> s1,
                    std::span<const NodeId> s2) {
  for (NodeId x : s1) {
    bool found = false;
    for (NodeId y : s2) {
      if (rel.Contains(x, y)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// ∀y∈s2 ∃x∈s1: R(x,y)  (the converse condition of b-simulation).
bool CoveredBackward(const BinaryRelation& rel, std::span<const NodeId> s1,
                     std::span<const NodeId> s2) {
  for (NodeId y : s2) {
    bool found = false;
    for (NodeId x : s1) {
      if (rel.Contains(x, y)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Does an injective λ: s1 → s2 with (x, λ(x)) ∈ R exist? Reduces to a
/// perfect-on-the-left bipartite matching on the R-compatibility graph.
bool HasInjectiveMapping(const BinaryRelation& rel, std::span<const NodeId> s1,
                         std::span<const NodeId> s2) {
  if (s1.size() > s2.size()) return false;
  if (s1.empty()) return true;
  std::vector<std::vector<uint32_t>> adj(s1.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    for (size_t j = 0; j < s2.size(); ++j) {
      if (rel.Contains(s1[i], s2[j])) adj[i].push_back(static_cast<uint32_t>(j));
    }
  }
  return MaxBipartiteMatching(adj, s2.size()) == s1.size();
}

/// Does a bijective λ: s1 → s2 with (x, λ(x)) ∈ R exist?
bool HasBijectiveMapping(const BinaryRelation& rel, std::span<const NodeId> s1,
                         std::span<const NodeId> s2) {
  if (s1.size() != s2.size()) return false;
  return HasInjectiveMapping(rel, s1, s2);
}

bool CheckPair(const Graph& g1, const Graph& g2, SimVariant variant,
               const BinaryRelation& rel, NodeId u, NodeId v) {
  auto out1 = g1.OutNeighbors(u);
  auto out2 = g2.OutNeighbors(v);
  auto in1 = g1.InNeighbors(u);
  auto in2 = g2.InNeighbors(v);
  switch (variant) {
    case SimVariant::kSimple:
      return CoveredForward(rel, out1, out2) && CoveredForward(rel, in1, in2);
    case SimVariant::kBi:
      return CoveredForward(rel, out1, out2) && CoveredForward(rel, in1, in2) &&
             CoveredBackward(rel, out1, out2) && CoveredBackward(rel, in1, in2);
    case SimVariant::kDegreePreserving:
      return HasInjectiveMapping(rel, out1, out2) &&
             HasInjectiveMapping(rel, in1, in2);
    case SimVariant::kBijective:
      return HasBijectiveMapping(rel, out1, out2) &&
             HasBijectiveMapping(rel, in1, in2);
  }
  return false;
}

}  // namespace

BinaryRelation MaxSimulation(const Graph& g1, const Graph& g2,
                             SimVariant variant) {
  FSIM_CHECK(g1.dict() == g2.dict())
      << "MaxSimulation requires graphs sharing one LabelDict";
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  BinaryRelation rel(n1, n2);
  for (NodeId u = 0; u < n1; ++u) {
    for (NodeId v = 0; v < n2; ++v) {
      if (g1.Label(u) == g2.Label(v)) rel.Set(u, v, true);
    }
  }

  // Greatest fixpoint: repeatedly delete pairs whose condition fails. The
  // conditions are monotone in R, so deletions never need to be revisited
  // and the loop terminates with the maximum χ-simulation.
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < n1; ++u) {
      for (NodeId v = 0; v < n2; ++v) {
        if (!rel.Contains(u, v)) continue;
        if (!CheckPair(g1, g2, variant, rel, u, v)) {
          rel.Set(u, v, false);
          changed = true;
        }
      }
    }
  }
  return rel;
}

bool Simulates(const Graph& g1, const Graph& g2, SimVariant variant, NodeId u,
               NodeId v) {
  return MaxSimulation(g1, g2, variant).Contains(u, v);
}

}  // namespace fsim
