#include "exact/strong_simulation.h"

#include <algorithm>

#include "common/logging.h"
#include "exact/exact_simulation.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"

namespace fsim {

std::vector<StrongSimMatch> StrongSimulation(const Graph& query,
                                             const Graph& data,
                                             const StrongSimOptions& opts) {
  FSIM_CHECK(query.dict() == data.dict());
  std::vector<StrongSimMatch> results;
  if (query.NumNodes() == 0 || data.NumNodes() == 0) return results;

  const uint32_t radius = std::max<uint32_t>(1, ExactDiameter(query));

  // Global pre-filter: a ball-local simulation is contained in the global
  // one, so only data nodes in the image of the global simulation can ever
  // appear in a match (and only they are valid centers). In partial-
  // coverage mode the global simulation may be empty even though partial
  // ball matches exist, so the filter falls back to label membership.
  std::vector<NodeId> centers;
  if (opts.min_coverage >= 1.0) {
    BinaryRelation global = MaxSimulation(query, data, SimVariant::kSimple);
    for (NodeId w = 0; w < data.NumNodes(); ++w) {
      for (NodeId q = 0; q < query.NumNodes(); ++q) {
        if (global.Contains(q, w)) {
          centers.push_back(w);
          break;
        }
      }
    }
  } else {
    std::vector<char> query_labels(query.dict()->size(), 0);
    for (NodeId q = 0; q < query.NumNodes(); ++q) {
      query_labels[query.Label(q)] = 1;
    }
    for (NodeId w = 0; w < data.NumNodes(); ++w) {
      if (query_labels[data.Label(w)]) centers.push_back(w);
    }
  }

  if (opts.max_centers > 0 && centers.size() > opts.max_centers) {
    // Even stride subsample, deterministic.
    std::vector<NodeId> sampled;
    sampled.reserve(opts.max_centers);
    const double stride = static_cast<double>(centers.size()) /
                          static_cast<double>(opts.max_centers);
    for (size_t i = 0; i < opts.max_centers; ++i) {
      sampled.push_back(
          centers[static_cast<size_t>(static_cast<double>(i) * stride)]);
    }
    centers = std::move(sampled);
  }

  for (NodeId center : centers) {
    auto ball_node_ids = BallNodes(data, center, radius);
    if (opts.max_ball_size > 0 && ball_node_ids.size() > opts.max_ball_size) {
      continue;
    }
    Subgraph ball = InducedSubgraph(data, ball_node_ids);
    BinaryRelation rel =
        MaxSimulation(query, ball.graph, SimVariant::kSimple);

    // Criterion (2): R contains the center and (min_coverage of) the query
    // nodes.
    const NodeId local_center = ball.from_parent[center];
    bool center_matched = false;
    size_t covered = 0;
    StrongSimMatch match;
    match.center = center;
    match.query_matches.resize(query.NumNodes());
    for (NodeId q = 0; q < query.NumNodes(); ++q) {
      for (NodeId x = 0; x < ball.graph.NumNodes(); ++x) {
        if (!rel.Contains(q, x)) continue;
        match.query_matches[q].push_back(ball.to_parent[x]);
        if (x == local_center) center_matched = true;
      }
      if (!match.query_matches[q].empty()) ++covered;
    }
    const double coverage = static_cast<double>(covered) /
                            static_cast<double>(query.NumNodes());
    if (coverage + 1e-12 < opts.min_coverage || !center_matched) continue;

    for (const auto& nodes : match.query_matches) {
      match.matched_nodes.insert(match.matched_nodes.end(), nodes.begin(),
                                 nodes.end());
    }
    std::sort(match.matched_nodes.begin(), match.matched_nodes.end());
    match.matched_nodes.erase(
        std::unique(match.matched_nodes.begin(), match.matched_nodes.end()),
        match.matched_nodes.end());
    results.push_back(std::move(match));
    if (opts.max_results > 0 && results.size() >= opts.max_results) break;
  }

  std::sort(results.begin(), results.end(),
            [](const StrongSimMatch& a, const StrongSimMatch& b) {
              if (a.matched_nodes.size() != b.matched_nodes.size()) {
                return a.matched_nodes.size() < b.matched_nodes.size();
              }
              return a.center < b.center;
            });
  return results;
}

}  // namespace fsim
