// Signature-based structural refinements:
//  * k-bisimulation signatures (Luo et al. [21], §4.3 of the paper):
//    sig_0(u) = ℓ(u); sig_k(u) hashes (sig_{k-1}(u), the *set* of
//    out-neighbors' sig_{k-1}); u, v are k-bisimilar ⟺ sig_k(u) = sig_k(v).
//  * Full bisimulation classes: the same refinement (optionally with
//    in-neighbor sets) run until the partition stabilizes — the classical
//    partition-refinement bisimilarity used by the Olap aligner [7].
//  * Weisfeiler-Lehman colors (multiset semantics, own color included) for
//    the Theorem 5 equivalence with bijective simulation.
//
// Signatures are deterministic functions of label ids and structure, so two
// graphs sharing a LabelDict produce directly comparable signatures.
#ifndef FSIM_EXACT_SIGNATURES_H_
#define FSIM_EXACT_SIGNATURES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// k rounds of k-bisimulation signature refinement (out-neighbors only, set
/// semantics), per [21].
std::vector<uint64_t> KBisimulationSignatures(const Graph& g, uint32_t k);

/// Runs set-semantics refinement until the joint partition of g1 and g2
/// stabilizes (or `max_rounds` if non-zero); considers out-neighbors and,
/// when `use_in_neighbors`, in-neighbors too. Returns per-graph signature
/// vectors whose values are comparable across the two graphs. Equal
/// signature ⟺ bisimilar (up to negligible 64-bit hash collisions).
std::pair<std::vector<uint64_t>, std::vector<uint64_t>> BisimulationClasses(
    const Graph& g1, const Graph& g2, bool use_in_neighbors,
    uint32_t max_rounds = 0);

/// Weisfeiler-Lehman color refinement on the graph's out-neighbor lists with
/// multiset semantics, run until stable (or max_rounds). Intended for
/// undirected adaptations (Graph::AsUndirected).
std::vector<uint64_t> WLColors(const Graph& g, uint32_t max_rounds = 0);

/// Joint WL refinement of two graphs (colors comparable across them).
std::pair<std::vector<uint64_t>, std::vector<uint64_t>> WLColors2(
    const Graph& g1, const Graph& g2, uint32_t max_rounds = 0);

}  // namespace fsim

#endif  // FSIM_EXACT_SIGNATURES_H_
