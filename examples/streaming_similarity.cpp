// Streaming similarity monitoring: keep fractional χ-simulation scores live
// while a co-purchase graph evolves, without recomputing from scratch —
// the incremental-maintenance extension (core/incremental.h) applied to the
// paper's Amazon-style recommendation scenario (§5.4: an edge u -> v means
// "people who buy u are likely to buy v next").
//
// The monitor maintains FSim_bj between the live catalog graph and a frozen
// reference snapshot. After every burst of edits it reports how much repair
// work the maintenance did and which products drifted furthest from their
// reference roles.
//
//   ./build/examples/streaming_similarity
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/incremental.h"
#include "graph/generators.h"

using namespace fsim;

namespace {

// A small product catalog: labels are product categories, edges are
// frequently-bought-next links.
Graph MakeCatalog(uint64_t seed) {
  LabelingOptions labels;
  labels.num_labels = 6;  // six categories
  labels.skew = 0.6;
  return ErdosRenyi(/*n=*/120, /*m=*/420, labels, seed);
}

}  // namespace

int main() {
  Graph catalog = MakeCatalog(0xCAFE);

  FSimConfig config;
  config.variant = SimVariant::kBijective;  // symmetric: a role-drift measure
  config.theta = 1.0;                       // same-category mapping only
  config.epsilon = 1e-5;

  IncrementalOptions options;
  options.propagation_tolerance = 1e-7;

  // Live catalog (graph 1) vs frozen reference snapshot (graph 2).
  auto monitor = IncrementalFSim::Create(catalog, catalog, config, options);
  if (!monitor.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 monitor.status().ToString().c_str());
    return 1;
  }
  std::printf("monitoring %zu products, %zu co-purchase links, %zu candidate "
              "pairs\n\n",
              catalog.NumNodes(), catalog.NumEdges(), monitor->NumPairs());

  Rng rng(0xBEEF);
  for (int burst = 1; burst <= 5; ++burst) {
    // A burst of catalog churn: links appear and disappear.
    size_t applied = 0;
    size_t recomputed = 0;
    for (int e = 0; e < 8; ++e) {
      NodeId a = static_cast<NodeId>(rng.NextBounded(catalog.NumNodes()));
      NodeId b = static_cast<NodeId>(rng.NextBounded(catalog.NumNodes()));
      if (a == b) continue;
      Status status = monitor->g1().HasEdge(a, b)
                          ? monitor->RemoveEdge(1, a, b)
                          : monitor->InsertEdge(1, a, b);
      if (!status.ok()) continue;
      ++applied;
      recomputed += monitor->last_edit_stats().recomputed;
    }

    // Which products drifted furthest from their reference role?
    std::vector<std::pair<double, NodeId>> drift;
    for (NodeId p = 0; p < monitor->g1().NumNodes(); ++p) {
      drift.emplace_back(1.0 - monitor->Score(p, p), p);
    }
    std::sort(drift.begin(), drift.end(), std::greater<>());

    std::printf("burst %d: %zu edits applied, %zu pair recomputations\n",
                burst, applied, recomputed);
    std::printf("  top drifted products (1 - FSim_bj(live, reference)):\n");
    for (int i = 0; i < 3; ++i) {
      std::printf("    product %3u (category %s): drift %.4f\n",
                  drift[i].second,
                  std::string(monitor->g1().LabelName(drift[i].second))
                      .c_str(),
                  drift[i].first);
    }
  }

  std::printf("\nA from-scratch solve would revisit all %zu candidate pairs "
              "every iteration after every burst; the monitor repaired only "
              "the affected neighborhood cones.\n",
              monitor->NumPairs());
  return 0;
}
