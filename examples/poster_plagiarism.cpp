// The paper's motivating example (Figure 2): detecting suspected poster
// plagiarism by the *degree* of approximate simulation between design-
// element graphs. Exact simulation answers "no" for every candidate; the
// fractional score exposes that P1 is nearly identical to the query poster.
//
//   ./build/examples/poster_plagiarism
#include <cstdio>
#include <vector>

#include "core/fsim_engine.h"
#include "exact/exact_simulation.h"
#include "graph/graph_builder.h"

using namespace fsim;

namespace {

/// Adds a poster node whose out-neighbors are its design elements.
NodeId AddPoster(GraphBuilder* b, const char* name,
                 const std::vector<const char*>& elements) {
  NodeId poster = b->AddNode(name);
  for (const char* element : elements) {
    b->AddEdge(poster, b->AddNode(element));
  }
  return poster;
}

}  // namespace

int main() {
  // Query poster P (Figure 2c): person image (embedded), comic font, etc.
  GraphBuilder qb;
  NodeId p = AddPoster(&qb, "poster", {"person-embed", "comic", "arial",
                                       "brown", "purple", "black", "italic"});
  Graph query = std::move(qb).BuildOrDie();

  // Database of existing posters (Figure 2d). P1 differs from P only in the
  // font and font style — the suspected plagiarism case.
  GraphBuilder db(query.dict());
  NodeId p1 = AddPoster(&db, "poster", {"person-embed", "times", "arial",
                                        "brown", "purple", "black"});
  NodeId p2 = AddPoster(&db, "poster",
                        {"person-noembed", "bradley", "blue", "yellow"});
  NodeId p3 = AddPoster(&db, "poster", {"person-noembed", "times", "white",
                                        "black", "yellow"});
  Graph posters = std::move(db).BuildOrDie();

  // Exact simulation: all candidates are rejected outright.
  BinaryRelation exact = MaxSimulation(query, posters, SimVariant::kSimple);
  std::printf("exact s-simulation:   P1=%s P2=%s P3=%s\n",
              exact.Contains(p, p1) ? "yes" : "no",
              exact.Contains(p, p2) ? "yes" : "no",
              exact.Contains(p, p3) ? "yes" : "no");

  // Fractional simulation quantifies how close each candidate comes. With
  // the Jaro-Winkler label function, near-identical element names (fonts,
  // colors) still contribute.
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.label_sim = LabelSimKind::kJaroWinkler;
  auto scores = ComputeFSim(query, posters, config);
  if (!scores.ok()) {
    std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  std::printf("fractional FSim_s:    P1=%.3f P2=%.3f P3=%.3f\n",
              scores->Score(p, p1), scores->Score(p, p2),
              scores->Score(p, p3));
  std::printf("\nP1 scores far above the others -> flagged for plagiarism "
              "review,\nexactly the case the yes/no semantics lost.\n");
  return 0;
}
