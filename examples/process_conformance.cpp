// Process-model conformance with weak simulation: does a vendor's
// order-fulfillment workflow conform to the reference process, when vendors
// are free to insert *internal* bookkeeping steps (audit, logging) that the
// reference does not mention?
//
// Exact simple simulation says "no" the moment an internal step appears.
// Weak simulation (exact/weak_simulation.h) treats internal-labeled nodes as
// τ-steps and looks through them; fractional FSim on the weak closures
// quantifies *how far* a non-conformant vendor is from the contract. The
// example also minimizes a redundant workflow with the bisimulation
// partition (exact/partition_refinement.h).
//
//   ./build/examples/process_conformance
#include <cstdio>

#include "core/fsim_engine.h"
#include "exact/partition_refinement.h"
#include "exact/weak_simulation.h"
#include "graph/graph_builder.h"

using namespace fsim;

namespace {

// Reference contract: receive -> validate -> charge -> pack -> ship.
Graph MakeReference(std::shared_ptr<LabelDict> dict) {
  GraphBuilder b(std::move(dict));
  NodeId receive = b.AddNode("receive");
  NodeId validate = b.AddNode("validate");
  NodeId charge = b.AddNode("charge");
  NodeId pack = b.AddNode("pack");
  NodeId ship = b.AddNode("ship");
  b.AddEdge(receive, validate);
  b.AddEdge(validate, charge);
  b.AddEdge(charge, pack);
  b.AddEdge(pack, ship);
  return std::move(b).BuildOrDie();
}

// Vendor A inserts internal audit/log steps between the observable ones —
// behaviorally conformant.
Graph MakeVendorA(std::shared_ptr<LabelDict> dict) {
  GraphBuilder b(std::move(dict));
  NodeId receive = b.AddNode("receive");
  NodeId audit1 = b.AddNode("audit");
  NodeId validate = b.AddNode("validate");
  NodeId charge = b.AddNode("charge");
  NodeId log1 = b.AddNode("log");
  NodeId pack = b.AddNode("pack");
  NodeId ship = b.AddNode("ship");
  b.AddEdge(receive, audit1);
  b.AddEdge(audit1, validate);
  b.AddEdge(validate, charge);
  b.AddEdge(charge, log1);
  b.AddEdge(log1, pack);
  b.AddEdge(pack, ship);
  return std::move(b).BuildOrDie();
}

// Vendor B ships before packing — an observable contract violation that no
// amount of internal bookkeeping explains.
Graph MakeVendorB(std::shared_ptr<LabelDict> dict) {
  GraphBuilder b(std::move(dict));
  NodeId receive = b.AddNode("receive");
  NodeId validate = b.AddNode("validate");
  NodeId charge = b.AddNode("charge");
  NodeId log1 = b.AddNode("log");
  NodeId ship = b.AddNode("ship");
  b.AddEdge(receive, validate);
  b.AddEdge(validate, charge);
  b.AddEdge(charge, log1);
  b.AddEdge(log1, ship);
  return std::move(b).BuildOrDie();
}

void CheckVendor(const Graph& reference, const Graph& vendor) {
  // Exact simulation: reference step 0 (receive) simulated by vendor's
  // receive?
  BinaryRelation strict =
      MaxSimulation(reference, vendor, SimVariant::kSimple);
  std::printf("  strict simulation:  %s\n",
              strict.Contains(0, 0) ? "conformant" : "NOT conformant");

  auto ref_mask = InternalMaskFromLabels(reference, {"audit", "log"});
  auto vendor_mask = InternalMaskFromLabels(vendor, {"audit", "log"});
  auto weak = MaxWeakSimulation(reference, ref_mask, vendor, vendor_mask);
  std::printf("  weak simulation:    %s\n",
              weak.ok() && weak->Contains(0, 0) ? "conformant"
                                                : "NOT conformant");

  // How close is the vendor, fractionally? FSim_s on the weak closures.
  auto ref_closure = WeakClosure(reference, ref_mask);
  auto vendor_closure = WeakClosure(vendor, vendor_mask);
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-6;
  auto scores = ComputeFSim(*ref_closure, *vendor_closure, config);
  std::printf("  fractional (weak):  FSim_s(receive, receive) = %.3f\n",
              scores->Score(0, 0));
}

}  // namespace

int main() {
  auto dict = std::make_shared<LabelDict>();
  Graph reference = MakeReference(dict);
  Graph vendor_a = MakeVendorA(dict);
  Graph vendor_b = MakeVendorB(dict);

  std::printf("Vendor A (adds internal audit/log steps):\n");
  CheckVendor(reference, vendor_a);
  std::printf("\nVendor B (ships without packing):\n");
  CheckVendor(reference, vendor_b);

  // Bonus: bisimulation minimization of a workflow with duplicated states.
  GraphBuilder b(dict);
  NodeId start = b.AddNode("receive");
  NodeId v1 = b.AddNode("validate");
  NodeId v2 = b.AddNode("validate");  // redundant duplicate
  NodeId charge = b.AddNode("charge");
  b.AddEdge(start, v1);
  b.AddEdge(start, v2);
  b.AddEdge(v1, charge);
  b.AddEdge(v2, charge);
  Graph redundant = std::move(b).BuildOrDie();
  Partition partition = BisimulationPartition(redundant);
  std::printf("\nWorkflow minimization: %zu states collapse to %zu "
              "bisimulation classes (the duplicated 'validate' states "
              "merge: %s)\n",
              redundant.NumNodes(), partition.num_blocks,
              partition.SameBlock(v1, v2) ? "yes" : "no");
  return 0;
}
