// Node similarity on a heterogeneous bibliographic network (the Table 7
// scenario): which venues are most similar to the flagship venue "WWW"?
// Fractional bijective simulation surfaces the duplicate venue ids
// (WWW1..WWW3) that 1-hop measures miss.
//
//   ./build/examples/venue_similarity
#include <cstdio>

#include "core/fsim_engine.h"
#include "datasets/dbis.h"

using namespace fsim;

int main() {
  DbisOptions opts;
  opts.num_authors = 600;
  opts.num_papers = 500;
  DbisGraph dbis = MakeDbis(opts);
  std::printf("DBIS analog: %zu venues, %zu papers, %zu authors\n\n",
              dbis.venues.size(), dbis.papers.size(), dbis.authors.size());

  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.theta = 1.0;  // same-label mapping (venue<->venue, author<->author)
  config.epsilon = 1e-3;
  auto scores = ComputeFSim(dbis.graph, dbis.graph, config);
  if (!scores.ok()) {
    std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
    return 1;
  }

  const NodeId www = dbis.venues[dbis.flagship];
  std::printf("top-5 venues most similar to WWW under FSim_bj:\n");
  int rank = 1;
  for (const auto& [node, score] : scores->TopK(www, 6)) {
    const NodeId vidx = dbis.venue_index_of_node[node];
    if (vidx == kInvalidNode) continue;  // papers/authors filtered by label
    std::printf("  %d. %-6s score=%.3f (area %u, tier %u)\n", rank++,
                dbis.venue_names[vidx].c_str(), score, dbis.venue_area[vidx],
                dbis.venue_tier[vidx]);
    if (rank > 5) break;
  }
  std::printf("\nWWW1..WWW3 are duplicate ids of WWW in the database — a "
              "good measure ranks them at the top.\n");
  return 0;
}
