// Approximate subgraph pattern matching on a co-purchase-style graph (the
// Table 6 scenario): extract a hidden query, distort it with noise, and
// compare exact strong simulation against FSim-seeded match expansion.
//
//   ./build/examples/pattern_matching
#include <cstdio>

#include "core/fsim_engine.h"
#include "datasets/dataset_registry.h"
#include "exact/strong_simulation.h"
#include "pattern/match_types.h"
#include "pattern/query_generator.h"
#include "pattern/seed_expansion.h"

using namespace fsim;

int main() {
  Graph data = MakeDatasetByName("amazon");
  std::printf("data graph: %zu nodes, %zu edges (amazon analog)\n",
              data.NumNodes(), data.NumEdges());

  Rng rng(2024);
  PatternQuery clean = ExtractQuery(data, 8, &rng);
  PatternQuery noisy = AddStructuralNoise(clean, 0.3, &rng);
  std::printf("query: %zu nodes, %zu edges (+%zu noise edges)\n\n",
              noisy.query.NumNodes(), noisy.query.NumEdges(),
              noisy.query.NumEdges() - clean.query.NumEdges());

  // Exact strong simulation on the noisy query: the inserted edges usually
  // destroy every exact match.
  StrongSimOptions ss_opts;
  ss_opts.max_results = 1;
  ss_opts.max_ball_size = 2000;
  auto strong = StrongSimulation(noisy.query, data, ss_opts);
  std::printf("strong simulation matches on the noisy query: %zu\n",
              strong.size());

  // FSim_s + seed expansion still finds the planted region.
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-4;
  auto scores = ComputeFSim(noisy.query, data, config);
  if (!scores.ok()) {
    std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  Mapping mapping = SeedExpansionMatch(noisy.query, data, *scores);
  MatchEval eval = EvaluateMapping(mapping, noisy.ground_truth);
  std::printf("FSim_s seed-expansion match: P=%.2f R=%.2f F1=%.2f\n\n",
              eval.precision, eval.recall, eval.f1);

  std::printf("query node -> matched data node (truth)\n");
  for (NodeId q = 0; q < noisy.query.NumNodes(); ++q) {
    std::printf("  %u (%.*s) -> %u (truth %u)%s\n", q,
                static_cast<int>(noisy.query.LabelName(q).size()),
                noisy.query.LabelName(q).data(), mapping[q],
                noisy.ground_truth[q],
                mapping[q] == noisy.ground_truth[q] ? "  [correct]" : "");
  }
  return 0;
}
