// Quickstart: build two small labeled graphs, compute fractional
// χ-simulation for all four variants, and query scores / top-k.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/fsim_engine.h"
#include "exact/exact_simulation.h"
#include "graph/graph_builder.h"

using namespace fsim;

int main() {
  // The paper's Figure 1: pattern node u (two hexagon neighbors, one
  // pentagon) against candidates v1..v4.
  GraphBuilder pattern_builder;
  NodeId u = pattern_builder.AddNode("circle");
  pattern_builder.AddEdge(u, pattern_builder.AddNode("hex"));
  pattern_builder.AddEdge(u, pattern_builder.AddNode("hex"));
  pattern_builder.AddEdge(u, pattern_builder.AddNode("pent"));
  Graph pattern = std::move(pattern_builder).BuildOrDie();

  // Share the pattern's label dictionary so labels are comparable.
  GraphBuilder data_builder(pattern.dict());
  NodeId v1 = data_builder.AddNode("circle");
  data_builder.AddEdge(v1, data_builder.AddNode("hex"));
  NodeId v2 = data_builder.AddNode("circle");
  data_builder.AddEdge(v2, data_builder.AddNode("hex"));
  data_builder.AddEdge(v2, data_builder.AddNode("pent"));
  NodeId v4 = data_builder.AddNode("circle");
  data_builder.AddEdge(v4, data_builder.AddNode("hex"));
  data_builder.AddEdge(v4, data_builder.AddNode("hex"));
  data_builder.AddEdge(v4, data_builder.AddNode("pent"));
  Graph data = std::move(data_builder).BuildOrDie();

  std::printf("FSim scores of pattern node u against v1, v2, v4:\n\n");
  for (SimVariant variant :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config;
    config.variant = variant;      // which χ-simulation to quantify
    config.w_out = 0.4;            // weight of out-neighbor agreement
    config.w_in = 0.4;             // weight of in-neighbor agreement
    config.epsilon = 1e-6;

    auto scores = ComputeFSim(pattern, data, config);
    if (!scores.ok()) {
      std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-3s  v1=%.3f  v2=%.3f  v4=%.3f   (%u iterations)\n",
                SimVariantName(variant), scores->Score(u, v1),
                scores->Score(u, v2), scores->Score(u, v4),
                scores->stats().iterations);
  }

  // Top-k similarity query (the container answers it directly).
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  auto scores = ComputeFSim(pattern, data, config);
  std::printf("\nTop-2 candidates for u under FSim_s:\n");
  for (const auto& [v, s] : scores->TopK(u, 2)) {
    std::printf("  node %u with score %.3f\n", v, s);
  }
  return 0;
}
