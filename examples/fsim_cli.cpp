// fsim_cli — command-line front end to the library: load one or two graphs
// (text format of graph_io.h or the binary format of binary_io.h,
// auto-detected), compute fractional χ-simulation, and print scores, top-k
// rows, certified global top-k pairs, exact-relation summaries or the
// bisimulation partition; convert between formats with --save-binary; or
// run as a long-lived query service (--serve) speaking the line protocol of
// docs/serving.md on stdin/stdout, with background incremental refresh and
// optional warm start from a saved scores file.
//
// Usage:
//   fsim_cli --g1 <file> [--g2 <file>] [--variant s|dp|b|bj]
//            [--theta T] [--w-out W] [--w-in W] [--label-sim i|e|j]
//            [--upper-bound] [--threads N] [--simd off|avx2|avx512|auto]
//            [--topk K --source NODE] [--topk-pairs K]
//            [--exact] [--partition]
//            [--out <scores-file>] [--save-binary <graph-file>]
//            [--serve] [--warm <scores-file>] [--refresh-edits N]
//            [--refresh-seconds S] [--cache-k K] [--sync-refresh]
//            [--metrics] [--trace-out <file>]
//
// With no --g2 the graph is compared against itself. With no action flag
// the tool prints run statistics and the 10 best non-trivial pairs.
#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/flat_pair_map.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/fsim_engine.h"
#include "core/incremental_index.h"
#include "core/pair_store.h"
#include "core/scores_io.h"
#include "core/simd/dispatch.h"
#include "core/topk_allpairs.h"
#include "core/topk_search.h"
#include "exact/exact_simulation.h"
#include "exact/partition_refinement.h"
#include "graph/binary_io.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"

using namespace fsim;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --g1 <file> [--g2 <file>] [--variant s|dp|b|bj]\n"
      "          [--theta T] [--w-out W] [--w-in W] [--label-sim i|e|j]\n"
      "          [--upper-bound] [--threads N] [--simd off|avx2|avx512|auto]\n"
      "          [--active-set off|exact|tol] [--frontier-tolerance T]\n"
      "          [--topk K --source NODE] [--topk-pairs K]\n"
      "          [--exact] [--partition]\n"
      "          [--out <scores-file>] [--save-binary <graph-file>]\n"
      "          [--serve] [--warm <scores-file>] [--refresh-edits N]\n"
      "          [--refresh-seconds S] [--cache-k K] [--sync-refresh]\n"
      "          [--wal-dir <dir>] [--wal-snapshot-edits N]\n"
      "          [--queue-capacity N] [--flush-timeout S]\n"
      "          [--failpoints <site=spec;...>] [--validate]\n"
      "          [--metrics] [--trace-out <file>]\n",
      argv0);
  return 2;
}

/// Loads a graph in either supported format: binary if the file starts with
/// the binary magic, text otherwise.
Result<Graph> LoadAnyGraph(const std::string& path,
                           std::shared_ptr<LabelDict> dict) {
  std::ifstream probe(path, std::ios::binary);
  char magic[8] = {0};
  probe.read(magic, sizeof(magic));
  if (probe.gcount() == 8 && std::memcmp(magic, "FSIMGRF1", 8) == 0) {
    return LoadGraphBinaryFromFile(path, std::move(dict));
  }
  return LoadGraphFromFile(path, std::move(dict));
}

bool ParseVariant(const char* s, SimVariant* out) {
  if (std::strcmp(s, "s") == 0) *out = SimVariant::kSimple;
  else if (std::strcmp(s, "dp") == 0) *out = SimVariant::kDegreePreserving;
  else if (std::strcmp(s, "b") == 0) *out = SimVariant::kBi;
  else if (std::strcmp(s, "bj") == 0) *out = SimVariant::kBijective;
  else return false;
  return true;
}

bool ParseLabelSim(const char* s, LabelSimKind* out) {
  if (std::strcmp(s, "i") == 0) *out = LabelSimKind::kIndicator;
  else if (std::strcmp(s, "e") == 0) *out = LabelSimKind::kEditDistance;
  else if (std::strcmp(s, "j") == 0) *out = LabelSimKind::kJaroWinkler;
  else return false;
  return true;
}

/// --validate: exercises every structural validator (docs/correctness.md)
/// against instances built from the loaded graphs, then prints the
/// ValidatorCounters table. Exit 0 iff all validators pass.
int RunValidate(const Graph& graph1, const Graph& target, FSimConfig config) {
  int failures = 0;
  const auto report = [&failures](const char* name, const Status& st) {
    if (st.ok()) {
      std::printf("  OK    %s\n", name);
    } else {
      std::printf("  FAIL  %s: %s\n", name, st.ToString().c_str());
      ++failures;
    }
  };
  std::printf("running structural validators:\n");

  // Adjacency invariants, after an edit round trip exercises the
  // insert/remove maintenance paths.
  DynamicGraph dg1(graph1);
  if (dg1.NumNodes() >= 2) {
    const NodeId a = 0;
    const NodeId b = static_cast<NodeId>(dg1.NumNodes() - 1);
    const bool inserted = dg1.InsertEdge(a, b).ok();
    if (inserted) report("DynamicGraph::RemoveEdge", dg1.RemoveEdge(a, b));
  }
  report("DynamicGraph::ValidateAdjacency", dg1.ValidateAdjacency());

  // Batch CSR neighbor index. Force a budget so the index actually builds
  // even when the run config leaves it off.
  LabelSimilarityCache lsim(*graph1.dict(), config.label_sim);
  FSimConfig store_config = config;
  if (store_config.neighbor_index_budget_bytes == 0) {
    store_config.neighbor_index_budget_bytes = 1ULL << 30;
  }
  auto store = PairStore::Build(graph1, target, store_config, lsim);
  if (!store.ok()) {
    report("PairStore::Build", store.status());
  } else {
    report("PairStore::ValidateNeighborIndex", store->ValidateNeighborIndex());

    // Incremental span arena over the same candidate set.
    std::vector<uint64_t> keys;
    keys.reserve(store->size());
    for (size_t i = 0; i < store->size(); ++i) {
      keys.push_back(PairKey(store->U(i), store->V(i)));
    }
    FlatPairMap pair_index(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      pair_index.Insert(keys[i], static_cast<uint32_t>(i));
    }
    DynamicGraph edit_g1(graph1);
    DynamicGraph edit_g2(target);
    const NeighborIndexEnv env{edit_g1, edit_g2, pair_index, lsim};
    IncrementalNeighborIndex inc;
    inc.Build(env, keys, store_config);
    report("IncrementalNeighborIndex::Validate", inc.Validate(keys.size()));
  }

  // Work-stealing scheduler accounting, after a real parallel region.
  {
    ThreadPool pool(config.num_threads > 0 ? config.num_threads : 2);
    std::vector<uint64_t> sums(1024, 0);
    pool.ParallelForChunked(sums.size(), 16,
                            [&sums](int, size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) sums[i] = i;
                            });
    report("ThreadPool::ValidateScheduler", pool.ValidateScheduler());
  }

  // Snapshot publish chain, fed by an actual solve.
  auto scores = ComputeFSim(graph1, target, config);
  if (!scores.ok()) {
    report("ComputeFSim", scores.status());
  } else {
    SnapshotStore snapshots;
    SharedFSimScores shared = FreezeScores(std::move(*scores));
    for (int round = 0; round < 2; ++round) {
      SnapshotMeta meta;
      meta.version = snapshots.NextVersion();
      snapshots.Publish(
          std::make_shared<const FSimSnapshot>(shared, /*cache_k=*/4, meta));
    }
    report("SnapshotStore::ValidateChain", snapshots.ValidateChain());
  }

  std::printf("validator invocation counts:\n");
  for (const auto& [name, count] : ValidatorCounters::Snapshot()) {
    std::printf("  %-40s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  if (failpoint::kCompiledIn) {
    std::printf("failpoint hit counts (%zu sites touched):\n",
                failpoint::Snapshot().size());
    for (const auto& [name, hits] : failpoint::Snapshot()) {
      std::printf("  %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(hits));
    }
  }
  if (failures == 0) {
    std::printf("all validators passed\n");
  } else {
    std::printf("%d validator(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string g1_path, g2_path, out_path, save_binary_path;
  FSimConfig config;
  config.label_sim = LabelSimKind::kIndicator;
  size_t topk = 0;
  size_t topk_pairs = 0;
  bool run_exact = false;
  bool run_partition = false;
  bool run_serve = false;
  bool run_validate = false;
  bool dump_metrics = false;
  std::string trace_out_path;
  ServeOptions serve_options;
  NodeId source = kInvalidNode;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    // Checked flag-value parsers: unlike the atoi/atof family they reject
    // garbage and out-of-range input loudly instead of silently reading 0.
    auto flag_value_error = [](const char* flag, const Status& st) {
      std::fprintf(stderr, "%s: %s\n", flag, st.ToString().c_str());
      std::exit(2);
    };
    auto parse_double_flag = [&](const char* flag) -> double {
      auto parsed = ParseDouble(need_value(flag));
      if (!parsed.ok()) flag_value_error(flag, parsed.status());
      return *parsed;
    };
    auto parse_size_flag = [&](const char* flag) -> size_t {
      auto parsed = ParseUint64(need_value(flag));
      if (!parsed.ok()) flag_value_error(flag, parsed.status());
      return static_cast<size_t>(*parsed);
    };
    auto parse_int_flag = [&](const char* flag) -> int {
      auto parsed = ParseInt64(need_value(flag));
      if (parsed.ok() && (*parsed < 0 || *parsed > INT_MAX)) {
        flag_value_error(flag,
                         Status::OutOfRange("value outside the int range"));
      }
      if (!parsed.ok()) flag_value_error(flag, parsed.status());
      return static_cast<int>(*parsed);
    };
    auto parse_node_flag = [&](const char* flag) -> NodeId {
      auto parsed = ParseUint64(need_value(flag));
      if (parsed.ok() && *parsed >= kInvalidNode) {
        flag_value_error(flag,
                         Status::OutOfRange("value outside the node-id range"));
      }
      if (!parsed.ok()) flag_value_error(flag, parsed.status());
      return static_cast<NodeId>(*parsed);
    };
    if (std::strcmp(argv[i], "--g1") == 0) {
      g1_path = need_value("--g1");
    } else if (std::strcmp(argv[i], "--g2") == 0) {
      g2_path = need_value("--g2");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need_value("--out");
    } else if (std::strcmp(argv[i], "--variant") == 0) {
      if (!ParseVariant(need_value("--variant"), &config.variant)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--label-sim") == 0) {
      if (!ParseLabelSim(need_value("--label-sim"), &config.label_sim)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--theta") == 0) {
      config.theta = parse_double_flag("--theta");
    } else if (std::strcmp(argv[i], "--w-out") == 0) {
      config.w_out = parse_double_flag("--w-out");
    } else if (std::strcmp(argv[i], "--w-in") == 0) {
      config.w_in = parse_double_flag("--w-in");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      config.num_threads = parse_int_flag("--threads");
    } else if (std::strcmp(argv[i], "--upper-bound") == 0) {
      config.upper_bound = true;
    } else if (std::strcmp(argv[i], "--active-set") == 0) {
      // Iterate-loop scheduling (docs/performance.md "Active-set
      // iteration"); flows through every engine the CLI reaches, including
      // the serving layer's warm-start initial solve.
      const char* mode = need_value("--active-set");
      if (std::strcmp(mode, "off") == 0) {
        config.active_set = ActiveSetMode::kOff;
      } else if (std::strcmp(mode, "exact") == 0) {
        config.active_set = ActiveSetMode::kExact;
      } else if (std::strcmp(mode, "tol") == 0) {
        config.active_set = ActiveSetMode::kTolerance;
      } else {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--frontier-tolerance") == 0) {
      config.frontier_tolerance = parse_double_flag("--frontier-tolerance");
    } else if (std::strcmp(argv[i], "--simd") == 0) {
      // Kernel-level ceiling for the dense engine (core/simd/dispatch.h);
      // the FSIM_SIMD environment variable, when set, wins over this flag.
      if (!simd::ParseSimdMode(need_value("--simd"), &config.simd)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      topk = parse_size_flag("--topk");
    } else if (std::strcmp(argv[i], "--topk-pairs") == 0) {
      topk_pairs = parse_size_flag("--topk-pairs");
    } else if (std::strcmp(argv[i], "--exact") == 0) {
      run_exact = true;
    } else if (std::strcmp(argv[i], "--partition") == 0) {
      run_partition = true;
    } else if (std::strcmp(argv[i], "--save-binary") == 0) {
      save_binary_path = need_value("--save-binary");
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      run_serve = true;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      serve_options.warm_scores_path = need_value("--warm");
    } else if (std::strcmp(argv[i], "--refresh-edits") == 0) {
      serve_options.policy.max_edits_behind = parse_size_flag("--refresh-edits");
    } else if (std::strcmp(argv[i], "--refresh-seconds") == 0) {
      serve_options.policy.max_seconds_behind =
          parse_double_flag("--refresh-seconds");
    } else if (std::strcmp(argv[i], "--cache-k") == 0) {
      serve_options.policy.topk_cache_k = parse_size_flag("--cache-k");
    } else if (std::strcmp(argv[i], "--sync-refresh") == 0) {
      serve_options.background_refresh = false;
    } else if (std::strcmp(argv[i], "--wal-dir") == 0) {
      serve_options.durability.dir = need_value("--wal-dir");
    } else if (std::strcmp(argv[i], "--wal-snapshot-edits") == 0) {
      serve_options.durability.snapshot_every_edits =
          parse_size_flag("--wal-snapshot-edits");
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      serve_options.policy.queue_capacity = parse_size_flag("--queue-capacity");
    } else if (std::strcmp(argv[i], "--flush-timeout") == 0) {
      serve_options.policy.flush_timeout_seconds =
          parse_double_flag("--flush-timeout");
    } else if (std::strcmp(argv[i], "--failpoints") == 0) {
      // Chaos testing (docs/correctness.md): arm injection sites before any
      // serving machinery is constructed. Only meaningful in an
      // FSIM_FAILPOINTS build; warn loudly otherwise so a chaos run against
      // a release binary is not silently a no-op.
      const char* spec = need_value("--failpoints");
      if (!failpoint::kCompiledIn) {
        std::fprintf(stderr,
                     "--failpoints ignored: this build compiled failpoint "
                     "sites out (rebuild with -DFSIM_FAILPOINTS=ON)\n");
      }
      Status armed = failpoint::ArmFromSpec(spec);
      if (!armed.ok()) {
        std::fprintf(stderr, "--failpoints: %s\n",
                     armed.ToString().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      run_validate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out_path = need_value("--trace-out");
    } else if (std::strcmp(argv[i], "--source") == 0) {
      source = parse_node_flag("--source");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (g1_path.empty()) return Usage(argv[0]);

  // Exit-time observability dumps as RAII so every return path below —
  // including error exits — still reports. The Prometheus exposition goes
  // to stdout (entirely scrapeable text); trace status goes to stderr.
  struct ObsDump {
    bool metrics = false;
    std::string trace_path;
    ~ObsDump() {
      if (!trace_path.empty()) {
        obs::DisarmTracing();
        const Status written = obs::WriteChromeTrace(trace_path);
        if (written.ok()) {
          std::fprintf(
              stderr, "trace written to %s (%llu events, %llu dropped)\n",
              trace_path.c_str(),
              static_cast<unsigned long long>(obs::TraceEventCount()),
              static_cast<unsigned long long>(obs::TraceDroppedCount()));
        } else {
          std::fprintf(stderr, "--trace-out: %s\n",
                       written.ToString().c_str());
        }
      }
      if (metrics) {
        const std::string exposition = obs::Registry::Default().RenderPrometheus();
        std::fwrite(exposition.data(), 1, exposition.size(), stdout);
      }
    }
  } obs_dump{dump_metrics, trace_out_path};
  if (!trace_out_path.empty()) obs::ArmTracing();

  // FSIM_FAILPOINTS=<site=spec;...> in the environment arms sites the same
  // way --failpoints does (no-op when unset or compiled out).
  if (Status armed = failpoint::ArmFromEnv(); !armed.ok()) {
    std::fprintf(stderr, "FSIM_FAILPOINTS: %s\n", armed.ToString().c_str());
    return 2;
  }

  auto g1 = LoadAnyGraph(g1_path, nullptr);
  if (!g1.ok()) {
    std::fprintf(stderr, "loading %s: %s\n", g1_path.c_str(),
                 g1.status().ToString().c_str());
    return 1;
  }
  Graph graph2;
  const bool self = g2_path.empty();
  if (!self) {
    auto g2 = LoadAnyGraph(g2_path, g1->dict());
    if (!g2.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", g2_path.c_str(),
                   g2.status().ToString().c_str());
      return 1;
    }
    graph2 = std::move(g2).ValueOrDie();
  }
  const Graph& graph1 = *g1;
  const Graph& target = self ? graph1 : graph2;

  if (run_validate) {
    return RunValidate(graph1, target, config);
  }

  if (run_serve) {
    // stdout is the protocol channel; banner and diagnostics go to stderr.
    std::fprintf(stderr, "G1: %s\n",
                 StatsToString(ComputeStats(graph1)).c_str());
    std::fprintf(stderr, "G2: %s\n",
                 StatsToString(ComputeStats(target)).c_str());
    auto service =
        FSimService::Create(graph1, target, config, serve_options);
    if (!service.ok()) {
      std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "serving (warm=%s, background refresh=%s, wal=%s); protocol: "
                 "PAIR/TOPK/THRESH/BATCH/EDIT/FLUSH/STATS/QUIT\n",
                 serve_options.warm_scores_path.empty() ? "no" : "yes",
                 serve_options.background_refresh ? "yes" : "no",
                 serve_options.durability.dir.empty()
                     ? "off"
                     : serve_options.durability.dir.c_str());
    Status st = (*service)->ServeLoop(std::cin, std::cout);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }

  std::printf("G1: %s\n", StatsToString(ComputeStats(graph1)).c_str());
  std::printf("G2: %s\n", StatsToString(ComputeStats(target)).c_str());

  if (!save_binary_path.empty()) {
    Status st = SaveGraphBinaryToFile(graph1, save_binary_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("G1 written in binary format to %s\n",
                save_binary_path.c_str());
    return 0;
  }

  if (run_partition) {
    Partition p = BisimulationPartition(graph1);
    std::printf("bisimulation partition of G1: %zu classes over %zu nodes "
                "(%zu splitters processed)\n",
                p.num_blocks, graph1.NumNodes(), p.splitters_processed);
    std::vector<size_t> sizes(p.num_blocks, 0);
    for (uint32_t b : p.block_of) ++sizes[b];
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    std::printf("largest classes:");
    for (size_t i = 0; i < std::min<size_t>(8, sizes.size()); ++i) {
      std::printf(" %zu", sizes[i]);
    }
    std::printf("\n");
    return 0;
  }

  if (run_exact) {
    BinaryRelation rel = MaxSimulation(graph1, target, config.variant);
    std::printf("exact %s-simulation: %zu of %zu pairs are in the maximum "
                "relation\n",
                SimVariantName(config.variant), rel.CountPairs(),
                graph1.NumNodes() * target.NumNodes());
    return 0;
  }

  if (topk_pairs > 0) {
    TopKPairsOptions options;
    options.k = topk_pairs;
    options.exclude_diagonal = self;
    auto result = ComputeTopKPairs(graph1, target, config, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("global top-%zu pairs (certified=%s, radius=%.2g, "
                "%u/%u iterations):\n",
                topk_pairs, result->certified ? "yes" : "no", result->radius,
                result->iterations, result->iteration_bound);
    for (const auto& p : result->pairs) {
      std::printf("  (%u, %u)  %.6f\n", p.u, p.v, p.score);
    }
    return 0;
  }

  if (topk > 0) {
    if (source == kInvalidNode) {
      std::fprintf(stderr, "--topk requires --source\n");
      return 2;
    }
    auto result = TopKSearch(graph1, target, source, config, {0, topk});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("top-%zu for node %u (depth %u, error bound %.2g, %zu pairs "
                "computed):\n",
                topk, source, result->depth, result->error_bound,
                result->pairs_computed);
    for (const auto& [v, score] : result->ranking) {
      std::printf("  %u (%.*s)  %.6f\n", v,
                  static_cast<int>(target.LabelName(v).size()),
                  target.LabelName(v).data(), score);
    }
    return 0;
  }

  auto scores = ComputeFSim(graph1, target, config);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }
  const auto& stats = scores->stats();
  std::printf("pairs=%zu (pruned %zu)  iterations=%u  converged=%s  "
              "time=%.2fs\n",
              stats.maintained_pairs, stats.pruned_pairs, stats.iterations,
              stats.converged ? "yes" : "no",
              stats.build_seconds + stats.iterate_seconds);

  if (!out_path.empty()) {
    Status st = SaveScoresToFile(*scores, out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("scores written to %s\n", out_path.c_str());
    return 0;
  }

  // Default report: the 10 best off-diagonal pairs.
  std::printf("top scoring pairs (u != v):\n");
  std::vector<std::pair<double, uint64_t>> best;
  const auto& keys = scores->keys();
  const auto& values = scores->values();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (self && PairFirst(keys[i]) == PairSecond(keys[i])) continue;
    best.emplace_back(values[i], keys[i]);
  }
  std::partial_sort(best.begin(),
                    best.begin() + std::min<size_t>(10, best.size()),
                    best.end(), std::greater<>());
  for (size_t i = 0; i < std::min<size_t>(10, best.size()); ++i) {
    std::printf("  (%u, %u)  %.6f\n", PairFirst(best[i].second),
                PairSecond(best[i].second), best[i].first);
  }
  return 0;
}
