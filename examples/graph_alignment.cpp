// RDF-style graph alignment across versions (the Table 9 scenario): align
// two snapshots of an evolving graph with fractional b-simulation and
// compare against exact bisimulation, which collapses under growth.
//
//   ./build/examples/graph_alignment
#include <cstdio>

#include "align/alignment.h"
#include "align/version_generator.h"
#include "core/fsim_engine.h"

using namespace fsim;

int main() {
  VersionOptions opts;
  opts.base_nodes = 1500;
  opts.base_edges = 3500;
  VersionedGraphs versions = MakeVersionedGraphs(opts);
  std::printf("G1: %zu nodes / %zu edges\nG2: %zu nodes / %zu edges\n\n",
              versions.base.NumNodes(), versions.base.NumEdges(),
              versions.v2.NumNodes(), versions.v2.NumEdges());

  // Exact bisimulation alignment: version growth refines nearly every
  // class, so almost nothing aligns (the paper reports 0% F1).
  double bisim_f1 = AlignmentF1(BisimAlignment(versions.base, versions.v2),
                                versions.base.NumNodes());
  std::printf("exact bisimulation alignment F1: %.3f\n", bisim_f1);

  // Fractional b-simulation alignment: align each node to its argmax.
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.theta = 1.0;
  config.epsilon = 1e-3;
  auto scores = ComputeFSim(versions.base, versions.v2, config);
  if (!scores.ok()) {
    std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  Alignment alignment = FSimAlignment(*scores, versions.base.NumNodes());
  std::printf("FSim_b alignment F1:             %.3f\n",
              AlignmentF1(alignment, versions.base.NumNodes()));
  std::printf("\n(ground truth: node i of G1 is node i of G2 — the stable-"
              "URI identity of the paper's RDF versions)\n");
  return 0;
}
