#!/usr/bin/env python3
"""Appends one compact JSONL record summarizing a bench run to BENCH_history.jsonl.

CI calls this after bench_fsim / exp_incremental so the perf trajectory is
visible per PR directly in the committed history file, without downloading
the artifact zips. Each line holds the headline numbers only (phase seconds
per engine path and per-edit milliseconds per stream); the full records stay
in the uploaded BENCH_*.json artifacts.

Usage:
  append_bench_history.py --label <sha> [--fsim BENCH_fsim.json]
      [--incremental BENCH_incremental.json] [--serve BENCH_serve.json]
      [--out BENCH_history.jsonl]
"""

import argparse
import json
import sys


def fsim_summary(runs):
    """{name: {build, iterate, iters, num_threads}} keeping floats short.

    num_threads rides along on every entry (informational to the gate) so a
    history line can never be compared against a run at a different thread
    count: multi-thread runs carry distinct "/tN"-suffixed names AND record
    the count explicitly for human readers of the history file.
    """
    return {
        name: {
            "build_s": round(r["build_seconds"], 4),
            "iterate_s": round(r["iterate_seconds"], 4),
            "iters": r["iterations"],
            "num_threads": r.get("num_threads", 1),
        }
        for name, r in runs.items()
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--label", required=True,
                        help="run label, e.g. the commit SHA")
    parser.add_argument("--fsim", default="BENCH_fsim.json")
    parser.add_argument("--incremental", default="BENCH_incremental.json")
    parser.add_argument("--serve", default="BENCH_serve.json")
    parser.add_argument("--out", default="BENCH_history.jsonl")
    args = parser.parse_args()

    record = {"label": args.label}
    try:
        with open(args.fsim) as f:
            fsim = json.load(f)
        record["fsim"] = fsim_summary(fsim.get("runs", {}))
        if fsim.get("dense"):
            record["dense"] = fsim_summary(fsim["dense"])
        # The "simd" section is already compact (per-variant scalar-vs-vector
        # iterate seconds and speedups from bench_fsim's min-of-N sweep);
        # fold it through as-is so the gate tracks the `*_s` time series.
        if fsim.get("simd"):
            record["simd"] = fsim["simd"]
    except OSError as e:
        print(f"warning: skipping fsim summary: {e}", file=sys.stderr)
    try:
        with open(args.incremental) as f:
            streams = json.load(f).get("streams", {})
        record["incremental"] = {
            name: {
                "median_edit_ms": round(s["median_edit_ms"], 3),
                "avg_propagate_ms": round(s["avg_propagate_ms"], 3),
                "num_threads": s.get("num_threads", 1),
            }
            for name, s in streams.items()
        }
    except OSError as e:
        print(f"warning: skipping incremental summary: {e}", file=sys.stderr)
    try:
        with open(args.serve) as f:
            serve = json.load(f).get("serve", {})
        qps = serve.get("pair_qps", {})
        topk = serve.get("topk", {})
        refresh = serve.get("refresh", {})
        record["serve"] = {
            "pair_qps_1t": round(qps.get("threads_1", 0.0)),
            "pair_qps_8t": round(qps.get("threads_8", 0.0)),
            "topk_cached_us": round(topk.get("cached_us", 0.0), 3),
            "topk_heap_us": round(topk.get("heap_select_us", 0.0), 3),
            "median_publish_ms": round(refresh.get("median_publish_ms", 0.0), 3),
            "median_flush_ms": round(refresh.get("median_flush_ms", 0.0), 3),
        }
        # Pooled batch throughput and the engine-thread refresh sweep: keyed
        # per thread count ("..._Nt" / "refresh_tN") so the gate's rolling
        # medians never mix runs at different counts.
        for threads_key, value in serve.get("batch_qps", {}).items():
            n = threads_key.rsplit("_", 1)[-1]
            record["serve"][f"batch_qps_{n}t"] = round(value)
        # Closed-loop per-verb latency quantiles (pair_p50_us, pair_p99_us,
        # ...). p50/p99 gate lower-is-better; *_max_us is informational.
        for key, value in serve.get("latency", {}).items():
            record["serve"][key] = round(value, 3)
        for key, section in serve.items():
            if key.startswith("refresh_t") and isinstance(section, dict):
                record["serve"][key] = {
                    "median_flush_ms": round(
                        section.get("median_flush_ms", 0.0), 3),
                    "median_publish_ms": round(
                        section.get("median_publish_ms", 0.0), 3),
                    "num_threads": section.get("num_threads", 1),
                }
    except OSError as e:
        print(f"warning: skipping serve summary: {e}", file=sys.stderr)

    line = json.dumps(record, separators=(",", ":"), sort_keys=True)
    with open(args.out, "a") as f:
        f.write(line + "\n")
    print(line)


if __name__ == "__main__":
    main()
