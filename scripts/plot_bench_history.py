#!/usr/bin/env python3
"""Trend plots over the committed BENCH_history.jsonl.

Each history line is one bench run (scripts/append_bench_history.py); this
script turns the per-metric series into trends so a perf trajectory is
readable without spelunking raw JSONL. Two renderers:

  * matplotlib (optional): `--out trends.png` writes one subplot per
    selected metric. If matplotlib is not importable the script falls back
    to ASCII with a warning — it never fails for lack of a plotting stack.
  * ASCII (default): one sparkline row per metric with first/min/max/last,
    suitable for CI logs and terminals.

Metrics are the numeric leaves of each record, addressed by dotted path
(e.g. "fsim.dp/indexed.iterate_s") exactly as in check_bench_history.py.
`--metric` filters by case-insensitive substring; series shorter than 2
points are skipped (nothing to trend).

Usage:
  plot_bench_history.py [--history BENCH_history.jsonl] [--metric SUBSTR]
      [--out trends.png] [--last N] [--width 48]
"""

import argparse
import json
import sys

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def numeric_leaves(record, prefix=""):
    """Yields (dotted_path, value) for every numeric leaf of a JSON dict."""
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from numeric_leaves(value, path)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield path, float(value)


def load_series(path, metric_filter, last):
    """Returns (labels, {metric: [(run_index, value), ...]})."""
    with open(path) as f:
        lines = [json.loads(line) for line in f if line.strip()]
    if last > 0:
        lines = lines[-last:]
    labels = [line.get("label", "?") for line in lines]
    series = {}
    for idx, line in enumerate(lines):
        record = {k: v for k, v in line.items() if k != "label"}
        for metric, value in numeric_leaves(record):
            if metric_filter and metric_filter.lower() not in metric.lower():
                continue
            series.setdefault(metric, []).append((idx, value))
    # A single point has no trend.
    return labels, {m: pts for m, pts in series.items() if len(pts) >= 2}


def sparkline(values, width):
    if len(values) > width:
        # Keep the newest `width` points: the recent trend is the question.
        values = values[-width:]
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_LEVELS[0] * len(values)
    scale = (len(SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(SPARK_LEVELS[int((v - lo) * scale)] for v in values)


def render_ascii(labels, series, width):
    if not series:
        print("plot: no metric series with >= 2 points; nothing to trend")
        return
    print(f"plot: {len(series)} metric(s) over {len(labels)} run(s) "
          f"({labels[0]} .. {labels[-1]})")
    name_width = min(48, max(len(m) for m in series))
    for metric in sorted(series):
        values = [v for _, v in series[metric]]
        first, last = values[0], values[-1]
        direction = "=" if first == last else ("+" if last < first else "-")
        print(f"  {metric:<{name_width}} {sparkline(values, width)} "
              f"first={first:g} min={min(values):g} max={max(values):g} "
              f"last={last:g} [{direction}]")


def render_matplotlib(labels, series, out):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    metrics = sorted(series)
    fig, axes = plt.subplots(len(metrics), 1,
                             figsize=(10, 2.2 * len(metrics)),
                             squeeze=False)
    for ax, metric in zip((a for row in axes for a in row), metrics):
        xs = [i for i, _ in series[metric]]
        ys = [v for _, v in series[metric]]
        ax.plot(xs, ys, marker="o", markersize=3, linewidth=1)
        ax.set_title(metric, fontsize=8, loc="left")
        ax.tick_params(labelsize=7)
        ax.set_xticks(range(len(labels)))
        ax.set_xticklabels(labels, rotation=45, fontsize=6)
    fig.tight_layout()
    fig.savefig(out, dpi=120)
    print(f"plot: wrote {out} ({len(metrics)} metrics)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--history", default="BENCH_history.jsonl")
    parser.add_argument("--metric", default="",
                        help="case-insensitive substring filter on the "
                             "dotted metric path")
    parser.add_argument("--out", default="",
                        help="write a PNG via matplotlib instead of ASCII "
                             "(falls back to ASCII if unavailable)")
    parser.add_argument("--last", type=int, default=0,
                        help="only the newest N history lines (0 = all)")
    parser.add_argument("--width", type=int, default=48,
                        help="ASCII sparkline width in characters")
    args = parser.parse_args()

    try:
        labels, series = load_series(args.history, args.metric, args.last)
    except OSError as e:
        print(f"plot: no history to plot ({e})")
        return 0

    if args.out:
        try:
            render_matplotlib(labels, series, args.out)
            return 0
        except ImportError:
            print("plot: matplotlib not available; falling back to ASCII",
                  file=sys.stderr)
    render_ascii(labels, series, args.width)
    return 0


if __name__ == "__main__":
    sys.exit(main())
