#!/usr/bin/env python3
"""Regression gate over the committed BENCH_history.jsonl.

Compares the newest history line (the current run, appended by
append_bench_history.py) against the rolling median of the preceding lines,
metric by metric. A tracked metric that regresses by more than --threshold
(default 20%) fails the gate with exit code 1; CI runs this right after the
append step so a PR that slows a tracked path down is flagged on the spot.

Tracked metrics are every numeric leaf of the summary record, addressed by
dotted path (e.g. "fsim.s/indexed.iterate_s"). Direction is inferred from
the name: *_qps counters are higher-is-better, iteration counts ("iters"),
thread counts ("num_threads"), ratio-style leaves ("*_fraction") and
single-worst-sample latencies ("*_max_us") are informational only
(skipped), everything else (seconds, ms, us) is lower-is-better — which
automatically covers the serve per-verb p50/p99 latency leaves. Metrics need at least --min-history prior samples before
they gate, so freshly added benchmarks ride along without failing; metrics
that disappear from the current line are ignored (benchmarks can be
retired).

Thread counts never mix: multi-thread runs carry "/tN"-suffixed metric
names (fsim / incremental) or "_Nt" / "refresh_tN" keys (serve), so each
(metric, thread count) pair forms its own rolling-median series, and the
per-entry "num_threads" leaf is skipped rather than gated. A CI runner
whose core count changes therefore starts fresh series instead of
comparing a 4-thread run against 1-thread medians.

The "simd.<variant>.<level>_t<N>_s" leaves (scalar-vs-vectorized dense
iterate, bench_fsim's min-of-N sweep) gate as ordinary lower-is-better
series; the derived "speedup_*" ratios are informational, since each one
is the quotient of two already-gated times.

PR 5 note: "fsim.<variant>/indexed.iterate_s" now measures the active-set
engine (exact mode, the library default — bit-identical to full sweeps and
within noise of the PR 1 indexed path), while the new
"fsim.<variant>/fullsweep.iterate_s" pins the PR 1 scheduling and
"fsim.<variant>/tol.iterate_s" the tolerance-mode frontier engine. The new
paths enter the gate through the usual --min-history grace period.

A malformed history line (truncated write, merge droppings) fails loudly
with exit code 2 and the offending line number, instead of the former
uncaught json.JSONDecodeError traceback; --self-test exercises the gate and
the malformed-line handling against synthetic histories, so CI can verify
the gate itself before trusting it.

Usage:
  check_bench_history.py [--history BENCH_history.jsonl] [--threshold 0.2]
      [--window 10] [--min-history 3] [--self-test]
"""

import argparse
import json
import os
import statistics
import sys
import tempfile


def numeric_leaves(record, prefix=""):
    """Yields (dotted_path, value) for every numeric leaf of a JSON dict."""
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from numeric_leaves(value, path)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield path, float(value)


def is_informational(path):
    leaf = path.rsplit(".", 1)[-1]
    # *_max_us latency leaves are a single worst sample (one scheduler stall
    # inflates them 1000x), so they are recorded but never gated; the p50/p99
    # quantile leaves gate through the default lower-is-better rule.
    # speedup_* ratios (the simd section) are derived from two gated time
    # series; gating the ratio too would double-count one noisy sample.
    return (leaf == "iters" or leaf == "num_threads"
            or leaf.endswith("_fraction") or leaf.endswith("_max_us")
            or leaf.startswith("speedup_"))


def higher_is_better(path):
    return "qps" in path.rsplit(".", 1)[-1]


def load_history(path):
    """Parses the JSONL history. Returns (records, error): on a malformed
    line, error names the line number and the parse failure."""
    records = []
    try:
        with open(path) as f:
            for line_no, line in enumerate(f, start=1):
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    return None, (f"{path}:{line_no}: malformed history line "
                                  f"({e}); fix or remove it before gating")
    except OSError as e:
        return [], f"unreadable: {e}"
    return records, None


def run_gate(args):
    lines, error = load_history(args.history)
    if lines is None:
        print(f"bench gate: ERROR: {error}", file=sys.stderr)
        return 2
    if error is not None:
        print(f"bench gate: no history to check ({error}); passing")
        return 0
    if len(lines) < 2:
        print("bench gate: fewer than 2 history lines; passing")
        return 0

    current = lines[-1]
    baseline_lines = lines[-(args.window + 1):-1]
    baseline = {}
    for line in baseline_lines:
        for path, value in numeric_leaves(
                {k: v for k, v in line.items() if k != "label"}):
            baseline.setdefault(path, []).append(value)

    failures = []
    checked = 0
    for path, value in numeric_leaves(
            {k: v for k, v in current.items() if k != "label"}):
        if is_informational(path):
            continue
        samples = baseline.get(path, [])
        if len(samples) < args.min_history:
            continue
        median = statistics.median(samples)
        if median == 0:
            continue
        checked += 1
        if higher_is_better(path):
            ratio = value / median
            regressed = ratio < 1.0 - args.threshold
            verdict = f"{ratio:.2f}x of median {median:g}"
        else:
            ratio = value / median
            regressed = ratio > 1.0 + args.threshold
            verdict = f"{ratio:.2f}x of median {median:g}"
        if regressed:
            failures.append(f"  {path}: {value:g} is {verdict} "
                            f"over the last {len(samples)} runs")

    label = current.get("label", "?")
    if failures:
        print(f"bench gate: FAIL for '{label}' "
              f"({len(failures)} of {checked} gated metrics regressed "
              f"> {args.threshold:.0%}):")
        print("\n".join(failures))
        return 1
    print(f"bench gate: OK for '{label}' ({checked} metrics within "
          f"{args.threshold:.0%} of their rolling medians)")
    return 0


def self_test():
    """End-to-end checks of the gate against synthetic histories. Exit 0 iff
    all behaviors (pass, regression, malformed line) hold."""
    def gate_on(lines_text, **overrides):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as f:
            f.write(lines_text)
            path = f.name
        try:
            args = argparse.Namespace(history=path, threshold=0.2, window=10,
                                      min_history=3, **overrides)
            return run_gate(args)
        finally:
            os.unlink(path)

    steady = "\n".join(
        json.dumps({"label": f"r{i}", "fsim": {"iterate_s": 1.0}})
        for i in range(5)) + "\n"
    regressed = "\n".join(
        json.dumps({"label": f"r{i}", "fsim": {"iterate_s": 1.0}})
        for i in range(4))
    regressed += "\n" + json.dumps(
        {"label": "slow", "fsim": {"iterate_s": 2.0}}) + "\n"
    malformed = steady + "{not json\n"

    checks = [
        ("steady history passes", gate_on(steady), 0),
        ("25% regression fails", gate_on(regressed), 1),
        ("malformed line exits 2", gate_on(malformed), 2),
        ("missing file passes", run_gate(argparse.Namespace(
            history="/nonexistent/bench.jsonl", threshold=0.2, window=10,
            min_history=3)), 0),
    ]
    failures = 0
    for name, got, want in checks:
        ok = got == want
        failures += 0 if ok else 1
        print(f"self-test: {'PASS' if ok else 'FAIL'} {name} "
              f"(exit {got}, want {want})")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--history", default="BENCH_history.jsonl")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression that fails the gate")
    parser.add_argument("--window", type=int, default=10,
                        help="prior lines forming the rolling baseline")
    parser.add_argument("--min-history", type=int, default=3,
                        help="prior samples a metric needs before it gates")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate against synthetic histories")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
