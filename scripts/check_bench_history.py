#!/usr/bin/env python3
"""Regression gate over the committed BENCH_history.jsonl.

Compares the newest history line (the current run, appended by
append_bench_history.py) against the rolling median of the preceding lines,
metric by metric. A tracked metric that regresses by more than --threshold
(default 20%) fails the gate with exit code 1; CI runs this right after the
append step so a PR that slows a tracked path down is flagged on the spot.

Tracked metrics are every numeric leaf of the summary record, addressed by
dotted path (e.g. "fsim.s/indexed.iterate_s"). Direction is inferred from
the name: *_qps counters are higher-is-better, iteration counts ("iters"),
thread counts ("num_threads") and ratio-style leaves ("*_fraction") are
informational only (skipped), everything else (seconds, ms, us) is
lower-is-better. Metrics need at least --min-history prior samples before
they gate, so freshly added benchmarks ride along without failing; metrics
that disappear from the current line are ignored (benchmarks can be
retired).

Thread counts never mix: multi-thread runs carry "/tN"-suffixed metric
names (fsim / incremental) or "_Nt" / "refresh_tN" keys (serve), so each
(metric, thread count) pair forms its own rolling-median series, and the
per-entry "num_threads" leaf is skipped rather than gated. A CI runner
whose core count changes therefore starts fresh series instead of
comparing a 4-thread run against 1-thread medians.

PR 5 note: "fsim.<variant>/indexed.iterate_s" now measures the active-set
engine (exact mode, the library default — bit-identical to full sweeps and
within noise of the PR 1 indexed path), while the new
"fsim.<variant>/fullsweep.iterate_s" pins the PR 1 scheduling and
"fsim.<variant>/tol.iterate_s" the tolerance-mode frontier engine. The new
paths enter the gate through the usual --min-history grace period.

Usage:
  check_bench_history.py [--history BENCH_history.jsonl] [--threshold 0.2]
      [--window 10] [--min-history 3]
"""

import argparse
import json
import statistics
import sys


def numeric_leaves(record, prefix=""):
    """Yields (dotted_path, value) for every numeric leaf of a JSON dict."""
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from numeric_leaves(value, path)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield path, float(value)


def is_informational(path):
    leaf = path.rsplit(".", 1)[-1]
    return (leaf == "iters" or leaf == "num_threads"
            or leaf.endswith("_fraction"))


def higher_is_better(path):
    return "qps" in path.rsplit(".", 1)[-1]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--history", default="BENCH_history.jsonl")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression that fails the gate")
    parser.add_argument("--window", type=int, default=10,
                        help="prior lines forming the rolling baseline")
    parser.add_argument("--min-history", type=int, default=3,
                        help="prior samples a metric needs before it gates")
    args = parser.parse_args()

    try:
        with open(args.history) as f:
            lines = [json.loads(line) for line in f if line.strip()]
    except OSError as e:
        print(f"bench gate: no history to check ({e}); passing")
        return 0
    if len(lines) < 2:
        print("bench gate: fewer than 2 history lines; passing")
        return 0

    current = lines[-1]
    baseline_lines = lines[-(args.window + 1):-1]
    baseline = {}
    for line in baseline_lines:
        for path, value in numeric_leaves(
                {k: v for k, v in line.items() if k != "label"}):
            baseline.setdefault(path, []).append(value)

    failures = []
    checked = 0
    for path, value in numeric_leaves(
            {k: v for k, v in current.items() if k != "label"}):
        if is_informational(path):
            continue
        samples = baseline.get(path, [])
        if len(samples) < args.min_history:
            continue
        median = statistics.median(samples)
        if median == 0:
            continue
        checked += 1
        if higher_is_better(path):
            ratio = value / median
            regressed = ratio < 1.0 - args.threshold
            verdict = f"{ratio:.2f}x of median {median:g}"
        else:
            ratio = value / median
            regressed = ratio > 1.0 + args.threshold
            verdict = f"{ratio:.2f}x of median {median:g}"
        if regressed:
            failures.append(f"  {path}: {value:g} is {verdict} "
                            f"over the last {len(samples)} runs")

    label = current.get("label", "?")
    if failures:
        print(f"bench gate: FAIL for '{label}' "
              f"({len(failures)} of {checked} gated metrics regressed "
              f"> {args.threshold:.0%}):")
        print("\n".join(failures))
        return 1
    print(f"bench gate: OK for '{label}' ({checked} metrics within "
          f"{args.threshold:.0%} of their rolling medians)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
