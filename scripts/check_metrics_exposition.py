#!/usr/bin/env python3
"""Validates a Prometheus text-format exposition (stdlib only).

Reads the exposition from a file (or stdin with "-") and checks:

  * syntax — every non-comment line is `name{labels} value` with a float
    value; label values are properly quoted; `# TYPE` appears at most once
    per family and precedes its samples,
  * histogram shape — every `# TYPE <f> histogram` family has _bucket,
    _sum and _count series per label set, bucket `le` thresholds parse and
    ascend, cumulative bucket counts are non-decreasing and the `+Inf`
    bucket equals _count,
  * coverage — the families the serving stack is expected to export are
    present (--require-serve adds the WAL families, which only register
    once a --wal-dir serve run touches the log).

This is the CI contract for the METRICS verb and `fsim_cli --metrics`: a
scrape that Prometheus would reject, or a refactor that silently drops a
family, fails the smoke step (exit 1) with the offending line.

With --from-serve-output the input is a full serve-session transcript
instead: the script locates the `METRICS <nlines>` frame, checks the
advertised line count against the payload, and validates the payload.

Usage:
  check_metrics_exposition.py [exposition.txt|-] [--require-serve]
      [--from-serve-output]
"""

from __future__ import annotations

import argparse
import re
import sys

# Families every process exports once the serving stack has handled at
# least one query and published once.
BASE_FAMILIES = [
    "fsim_serve_query_seconds",
    "fsim_refresh_queue_depth",
    "fsim_refresh_edits_total",
    "fsim_publish_age_seconds",
    "fsim_scheduler_regions_total",
    "fsim_scheduler_steal_batches_total",
]

# Families that additionally appear when the serve run logs to a WAL.
SERVE_WAL_FAMILIES = [
    "fsim_wal_append_seconds",
    "fsim_wal_fsync_seconds",
    "fsim_wal_group_commits_total",
    "fsim_wal_pending",
]

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def parse_labels(raw):
    """Splits a label block on unescaped-quote-aware commas; returns an
    ordered dict or None on malformed input."""
    labels = {}
    if raw is None or raw == "":
        return labels
    parts = []
    depth_in_quotes = False
    current = []
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\" and depth_in_quotes:
            current.append(raw[i:i + 2])
            i += 2
            continue
        if c == '"':
            depth_in_quotes = not depth_in_quotes
        if c == "," and not depth_in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(c)
        i += 1
    parts.append("".join(current))
    for part in parts:
        m = LABEL_RE.match(part)
        if not m:
            return None
        labels[m.group("key")] = m.group("value")
    return labels


def family_of(sample_name, histogram_families):
    """Maps a sample name to its family (strips _bucket/_sum/_count for
    known histogram families)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in histogram_families:
                return base
    return sample_name


def check(text):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    types = {}          # family -> type
    samples = []        # (line_no, name, labels-dict, value)
    seen_families = set()

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"line {line_no}: malformed TYPE line: {line}")
                continue
            family = parts[2]
            if family in types:
                errors.append(f"line {line_no}: duplicate TYPE for {family}")
            types[family] = parts[3]
            continue
        if line.startswith("# HELP "):
            if len(line.split(None, 3)) < 4:
                errors.append(f"line {line_no}: malformed HELP line: {line}")
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {line_no}: unparseable sample: {line}")
            continue
        labels = parse_labels(m.group("labels"))
        if labels is None:
            errors.append(f"line {line_no}: malformed label block: {line}")
            continue
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {line_no}: non-numeric value: {line}")
            continue
        samples.append((line_no, m.group("name"), labels, value))

    histogram_families = {f for f, t in types.items() if t == "histogram"}
    for line_no, name, labels, _ in samples:
        family = family_of(name, histogram_families)
        seen_families.add(family)
        if family not in types:
            errors.append(f"line {line_no}: sample {name} has no TYPE line")

    # Histogram shape: per (family, non-le labels) series.
    for family in sorted(histogram_families):
        series = {}
        for _, name, labels, value in samples:
            if family_of(name, histogram_families) != family:
                continue
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            entry = series.setdefault(key, {"buckets": [], "sum": None,
                                            "count": None})
            if name == family + "_bucket":
                if "le" not in labels:
                    errors.append(f"{family}_bucket missing le label")
                    continue
                try:
                    entry["buckets"].append((parse_value(labels["le"]),
                                             value))
                except ValueError:
                    errors.append(
                        f"{family}_bucket has unparseable le="
                        f"{labels['le']!r}")
            elif name == family + "_sum":
                entry["sum"] = value
            elif name == family + "_count":
                entry["count"] = value
        if not series:
            errors.append(f"histogram {family} has a TYPE line but no "
                          "samples")
        for key, entry in series.items():
            where = f"{family}{dict(key) if key else ''}"
            if entry["sum"] is None or entry["count"] is None:
                errors.append(f"{where}: missing _sum or _count")
                continue
            if not entry["buckets"]:
                errors.append(f"{where}: no _bucket samples")
                continue
            buckets = sorted(entry["buckets"], key=lambda b: b[0])
            last = -1.0
            for le, cumulative in buckets:
                if cumulative < last:
                    errors.append(f"{where}: bucket le={le} count "
                                  f"{cumulative} decreases")
                last = cumulative
            if buckets[-1][0] != float("inf"):
                errors.append(f"{where}: missing +Inf bucket")
            elif buckets[-1][1] != entry["count"]:
                errors.append(f"{where}: +Inf bucket {buckets[-1][1]} != "
                              f"_count {entry['count']}")
    return errors, seen_families


def extract_from_serve_output(text):
    """Pulls the `METRICS <nlines>` framed payload out of a serve-session
    transcript. Returns (payload, error)."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.startswith("METRICS "):
            continue
        try:
            nlines = int(line.split()[1])
        except (IndexError, ValueError):
            return None, f"malformed METRICS frame header: {line!r}"
        payload = lines[i + 1:i + 1 + nlines]
        if len(payload) != nlines:
            return None, (f"METRICS advertised {nlines} lines but only "
                          f"{len(payload)} follow")
        return "\n".join(payload) + "\n", None
    return None, "no METRICS frame in serve output"


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("exposition", nargs="?", default="-",
                        help="exposition file, or - for stdin")
    parser.add_argument("--require-serve", action="store_true",
                        help="also require the WAL families a --wal-dir "
                             "serve run exports")
    parser.add_argument("--from-serve-output", action="store_true",
                        help="input is a serve-session transcript; extract "
                             "the METRICS <nlines> frame first")
    args = parser.parse_args()

    if args.exposition == "-":
        text = sys.stdin.read()
    else:
        with open(args.exposition) as f:
            text = f.read()
    if args.from_serve_output:
        text, frame_error = extract_from_serve_output(text)
        if frame_error:
            print(f"metrics exposition: {frame_error}", file=sys.stderr)
            return 1

    errors, seen = check(text)
    required = list(BASE_FAMILIES)
    if args.require_serve:
        required += SERVE_WAL_FAMILIES
    for family in required:
        if family not in seen:
            errors.append(f"required family missing: {family}")

    if errors:
        print(f"metrics exposition: {len(errors)} error(s):",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"metrics exposition: OK ({len(seen)} families, "
          f"{len(required)} required present)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
