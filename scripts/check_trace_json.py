#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file (stdlib only).

Checks the contract `fsim_cli --trace-out` promises (docs/observability.md):

  * the file parses as JSON with a top-level {"traceEvents": [...]} object,
  * every event is a complete ("ph": "X") event carrying name, pid, tid,
    a numeric ts and a non-negative numeric dur (complete events need no
    B/E matching — emitting only X is how the writer guarantees balance),
  * within each tid, events are sorted by ts (the per-thread rings record
    monotonically; an unsorted stream means the writer merged wrong),
  * nothing else sneaks in (an event with ph B/E fails: the writer never
    emits them, so their presence signals a regression to unbalanced
    spans).

Exit 0 and a one-line summary when valid; exit 1 with the offending
events otherwise. Perfetto loads anything this passes.

Usage:
  check_trace_json.py trace.json [--min-events N]
"""

from __future__ import annotations

import argparse
import json
import sys


def check(doc):
    errors = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level is not an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not an array"]

    by_tid = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph != "X":
            errors.append(f"event {i}: ph={ph!r}, expected complete 'X' "
                          "events only")
            continue
        missing = [k for k in ("name", "pid", "tid", "ts", "dur")
                   if k not in event]
        if missing:
            errors.append(f"event {i}: missing {missing}")
            continue
        if not isinstance(event["ts"], (int, float)) or \
                not isinstance(event["dur"], (int, float)):
            errors.append(f"event {i}: non-numeric ts/dur")
            continue
        if event["dur"] < 0:
            errors.append(f"event {i}: negative dur {event['dur']}")
        if not isinstance(event["name"], str) or not event["name"]:
            errors.append(f"event {i}: empty or non-string name")
        by_tid.setdefault(event["tid"], []).append((i, event["ts"]))

    for tid, entries in by_tid.items():
        last_ts = None
        for i, ts in entries:
            if last_ts is not None and ts < last_ts:
                errors.append(f"event {i}: tid {tid} ts {ts} < previous "
                              f"{last_ts} (per-tid stream must be sorted)")
            last_ts = ts
    return errors


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail if fewer events (an armed run that "
                             "recorded nothing is a regression)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace json: cannot parse {args.trace}: {e}",
              file=sys.stderr)
        return 1

    errors = check(doc)
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    if not errors and len(events) < args.min_events:
        errors.append(f"only {len(events)} events, expected at least "
                      f"{args.min_events}")
    if errors:
        print(f"trace json: {len(errors)} error(s) in {args.trace}:",
              file=sys.stderr)
        for e in errors[:20]:
            print(f"  {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    tids = {e.get("tid") for e in events}
    print(f"trace json: OK ({len(events)} events across {len(tids)} "
          f"threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
