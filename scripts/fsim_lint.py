#!/usr/bin/env python3
"""fsim-lint: project-specific static checks the generic tools don't cover.

Rules (each can be silenced on a line with `// fsim-lint: allow(<rule>)`):

  sync-comment    Every std::atomic<...> or std::mutex data member in a
                  header must carry a `// guards:` or `// ordering:` comment
                  (on its line or the line above) documenting what it
                  protects or which memory-ordering contract it relies on.
  parallel-hot    Lambda bodies passed to ThreadPool::ParallelFor* inside
                  src/core and src/common must not acquire locks
                  (lock_guard/unique_lock/scoped_lock/.lock()) or call
                  allocation-heavy formatting (std::endl, ostringstream,
                  StrFormat) — those serialize or bloat the hot loop.
  metrics-hot     Lambda bodies passed to ThreadPool::ParallelFor* anywhere
                  in src/ must not resolve metrics by name (Registry::Default,
                  GetCounter/GetGauge/GetHistogram, RegisterCallbackGauge) —
                  each lookup takes the registry mutex and hashes the family
                  string. Pre-resolve the Counter*/Histogram* handle outside
                  the parallel region; recording on a handle is lock-free.
  banned          rand(/srand(/strtok( are banned everywhere (non-reentrant
                  or non-deterministic; use common/random.h). Headers must
                  not define non-const local statics in inline functions.
  header-guard    Headers use #pragma once or an FSIM_*_H_ include guard.
  include-order   The first include of a .cc file must be its own header
                  (subdirectory-qualified, e.g. "core/pair_store.h").
  naked-new       `new` outside factories/tests is banned — the codebase
                  owns memory via containers and smart pointers.
  durability      Every fsync/fdatasync call site in src/ must carry a
                  `// durability:` comment (on the line or within the ten
                  lines above) stating what crash-consistency contract the
                  sync upholds — the WAL/snapshot ordering invariants live
                  in those comments.
  simd-isolation  x86 vector intrinsics (<immintrin.h>/<x86intrin.h>,
                  _mm*_* calls, __m128/__m256/__m512/__mmask types) are
                  confined to src/core/simd/ — everything else talks to the
                  kernel-table abstraction (core/simd/kernels.h) so the
                  portable scalar build never depends on ISA headers.
                  Deliberate exceptions (e.g. a bench TU timing with
                  __rdtsc) carry the per-line allow escape.

A checked-in baseline (scripts/fsim_lint_baseline.json) grandfathers
pre-existing violations: a finding whose (file, rule, line-content) triple is
baselined is reported only as stale-baseline info, never as an error, so old
debt fails the build only when the offending line is touched. Run with
--update-baseline after deliberate cleanups.

Exit codes: 0 clean, 1 new violations, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "fsim_lint_baseline.json"

LINT_DIRS = ("src", "tests", "bench", "examples")
HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".cc", ".cpp"}
ALLOW_RE = re.compile(r"//\s*fsim-lint:\s*allow\(([a-z-]+)\)")

ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:std::)?(?:atomic(?:<|\b)|mutex\b|shared_mutex\b|"
    r"condition_variable\b)"
)
SYNC_COMMENT_RE = re.compile(r"//.*(guards:|ordering:)")
PARALLEL_CALL_RE = re.compile(r"\bParallelFor(?:Chunked|Span|Frontier)?\s*\(")
LOCK_RE = re.compile(
    r"\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*<|\.lock\s*\(\)"
)
ALLOC_HEAVY_RE = re.compile(r"std::endl\b|ostringstream\b|\bStrFormat\s*\(")
METRICS_LOOKUP_RE = re.compile(
    r"\bRegistry::Default\b|\bGet(?:Counter|Gauge|Histogram)\s*\(|"
    r"\b(?:Un)?RegisterCallbackGauge\s*\(")
BANNED_CALL_RE = re.compile(r"(?<![\w:.>])(?:rand|srand|strtok)\s*\(")
LOCAL_STATIC_RE = re.compile(r"^\s*static\s+(?!constexpr|const\b|assert)\w")
NAKED_NEW_RE = re.compile(r"(?<![\w_])new\s+[A-Za-z_:][\w:<>, ]*[({]")
INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')
FSYNC_CALL_RE = re.compile(r"\b(?:fsync|fdatasync)\s*\(")
DURABILITY_COMMENT_RE = re.compile(r"//.*durability:")
DURABILITY_LOOKBACK = 10


def relpath(path: Path) -> str:
    return path.relative_to(REPO_ROOT).as_posix()


class Finding:
    def __init__(self, path: Path, line_no: int, rule: str, message: str,
                 line: str):
        self.file = relpath(path)
        self.line_no = line_no
        self.rule = rule
        self.message = message
        self.line = line

    def key(self) -> str:
        content_hash = hashlib.sha1(self.line.strip().encode()).hexdigest()[:12]
        return f"{self.file}:{self.rule}:{content_hash}"

    def __str__(self) -> str:
        return f"{self.file}:{self.line_no}: [{self.rule}] {self.message}"


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    """True if line idx (0-based) or the line above carries an allow escape."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def strip_strings_and_comments(line: str) -> str:
    """Removes string/char literals and // comments so patterns don't match
    inside them. Block comments are not used in this codebase's hot paths."""
    out = []
    i = 0
    in_string = None
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in "\"'":
            in_string = c
            i += 1
            continue
        if line.startswith("//", i):
            break
        out.append(c)
        i += 1
    return "".join(out)


def check_sync_comments(path: Path, lines: list[str]) -> list[Finding]:
    if path.suffix not in HEADER_SUFFIXES:
        return []
    findings = []
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if not ATOMIC_MEMBER_RE.match(code):
            continue
        # Member declarations only: require a terminating ; or { initializer,
        # and skip function declarations/definitions (a ')' before the end).
        if ";" not in code and "{" not in code:
            continue
        if re.search(r"\)\s*(?:const\s*)?(?:noexcept\s*)?[{;]", code):
            continue
        if allowed(lines, i, "sync-comment"):
            continue
        # The documenting comment may sit on the member's line or anywhere in
        # the contiguous comment block above it.
        context = [line]
        j = i - 1
        while j >= 0 and lines[j].lstrip().startswith("//"):
            context.append(lines[j])
            j -= 1
        if any(SYNC_COMMENT_RE.search(c) for c in context):
            continue
        findings.append(Finding(
            path, i + 1, "sync-comment",
            "atomic/mutex member needs a `// guards:` or `// ordering:` "
            "comment documenting its synchronization contract", line))
    return findings


def parallel_lambda_ranges(lines: list[str]) -> list[tuple[int, int]]:
    """(start, end) 0-based line ranges of ParallelFor* call arguments,
    matched by brace/paren balance from the call site."""
    ranges = []
    for i, line in enumerate(lines):
        if not PARALLEL_CALL_RE.search(strip_strings_and_comments(line)):
            continue
        depth = 0
        started = False
        for j in range(i, min(len(lines), i + 200)):
            code = strip_strings_and_comments(lines[j])
            if j == i:
                code = code[PARALLEL_CALL_RE.search(code).start():]
            for c in code:
                if c == "(":
                    depth += 1
                    started = True
                elif c == ")":
                    depth -= 1
            if started and depth <= 0:
                ranges.append((i, j))
                break
        else:
            ranges.append((i, min(len(lines) - 1, i + 200)))
    return ranges


def check_parallel_hot(path: Path, lines: list[str]) -> list[Finding]:
    rel = relpath(path)
    if not (rel.startswith("src/core/") or rel.startswith("src/common/")):
        return []
    findings = []
    for start, end in parallel_lambda_ranges(lines):
        for i in range(start, end + 1):
            code = strip_strings_and_comments(lines[i])
            if allowed(lines, i, "parallel-hot"):
                continue
            if LOCK_RE.search(code):
                findings.append(Finding(
                    path, i + 1, "parallel-hot",
                    "mutex acquisition inside a ParallelFor* body serializes "
                    "the parallel region", lines[i]))
            if ALLOC_HEAVY_RE.search(code):
                findings.append(Finding(
                    path, i + 1, "parallel-hot",
                    "allocation-heavy formatting inside a ParallelFor* body "
                    "(std::endl / ostringstream / StrFormat)", lines[i]))
    return findings


def check_metrics_hot(path: Path, lines: list[str]) -> list[Finding]:
    rel = relpath(path)
    if not rel.startswith("src/"):
        return []
    findings = []
    for start, end in parallel_lambda_ranges(lines):
        for i in range(start, end + 1):
            code = strip_strings_and_comments(lines[i])
            if allowed(lines, i, "metrics-hot"):
                continue
            if METRICS_LOOKUP_RE.search(code):
                findings.append(Finding(
                    path, i + 1, "metrics-hot",
                    "metrics registry lookup-by-name inside a ParallelFor* "
                    "body (registry mutex + family-name hash per call); "
                    "pre-resolve the handle outside the parallel region "
                    "and record on it lock-free", lines[i]))
    return findings


def check_banned(path: Path, lines: list[str]) -> list[Finding]:
    findings = []
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if BANNED_CALL_RE.search(code) and not allowed(lines, i, "banned"):
            findings.append(Finding(
                path, i + 1, "banned",
                "rand/srand/strtok are banned (non-reentrant or "
                "non-deterministic); use common/random.h", line))
        if (path.suffix in HEADER_SUFFIXES and LOCAL_STATIC_RE.match(code)
                and "(" not in code.split("=")[0].split("{")[0]
                and not allowed(lines, i, "banned")):
            # Heuristic: static data (not function decls) in a header means a
            # non-const static local or global in every TU.
            findings.append(Finding(
                path, i + 1, "banned",
                "non-const static data in a header (one mutable copy per "
                "translation unit)", line))
    return findings


def check_header_guard(path: Path, lines: list[str]) -> list[Finding]:
    if path.suffix not in HEADER_SUFFIXES:
        return []
    head = "\n".join(lines[:120])  # file comments may run long
    if "#pragma once" in head:
        return []
    if re.search(r"#ifndef\s+FSIM_\w+_H_", head):
        return []
    if any(allowed(lines, i, "header-guard") for i in range(min(5, len(lines)))):
        return []
    return [Finding(path, 1, "header-guard",
                    "header lacks #pragma once or an FSIM_*_H_ include guard",
                    lines[0] if lines else "")]


def check_include_order(path: Path, lines: list[str]) -> list[Finding]:
    if path.suffix not in SOURCE_SUFFIXES:
        return []
    rel = relpath(path)
    if not rel.startswith("src/"):
        return []
    stem = path.stem
    for i, line in enumerate(lines):
        m = INCLUDE_RE.match(line)
        if not m:
            if line.lstrip().startswith("#include"):
                # First include is <system>: fine only if the TU has no own
                # header (mains); keep permissive and stop scanning.
                return []
            continue
        first = m.group(1)
        if allowed(lines, i, "include-order"):
            return []
        if Path(first).stem == stem:
            return []
        own_header = Path(rel).with_suffix(".h")
        if not (REPO_ROOT / own_header).exists():
            return []  # no paired header (e.g. a main)
        return [Finding(
            path, i + 1, "include-order",
            f'first include must be the TU\'s own header ("{stem}.h"), '
            f'found "{first}"', line)]
    return []


def check_naked_new(path: Path, lines: list[str]) -> list[Finding]:
    rel = relpath(path)
    if not rel.startswith("src/"):
        return []  # tests/bench may allocate for gtest environments etc.
    findings = []
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if not NAKED_NEW_RE.search(code):
            continue
        if "placement" in line or "make_shared" in code or "make_unique" in code:
            continue
        if allowed(lines, i, "naked-new"):
            continue
        findings.append(Finding(
            path, i + 1, "naked-new",
            "naked `new` outside a factory; own memory via containers, "
            "make_unique or make_shared", line))
    return findings


def check_durability(path: Path, lines: list[str]) -> list[Finding]:
    rel = relpath(path)
    if not rel.startswith("src/"):
        return []  # tests may fsync scratch files without a contract
    findings = []
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if not FSYNC_CALL_RE.search(code):
            continue
        if allowed(lines, i, "durability"):
            continue
        window = lines[max(0, i - DURABILITY_LOOKBACK):i + 1]
        if any(DURABILITY_COMMENT_RE.search(w) for w in window):
            continue
        findings.append(Finding(
            path, i + 1, "durability",
            "fsync/fdatasync call site needs a `// durability:` comment "
            "stating the crash-consistency contract it upholds", line))
    return findings


SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|[a-z]+mmintrin|avx\w*intrin)\.h>")
SIMD_INTRINSIC_RE = re.compile(
    r"\b_mm\d*_\w+\s*\(|\b__m(?:128|256|512)[di]?\b|\b__mmask\d+\b")
SIMD_HOME = "src/core/simd/"


def check_simd_isolation(path: Path, lines: list[str]) -> list[Finding]:
    if relpath(path).startswith(SIMD_HOME):
        return []
    findings = []
    for i, line in enumerate(lines):
        code = strip_strings_and_comments(line)
        if not (SIMD_INCLUDE_RE.search(code) or SIMD_INTRINSIC_RE.search(code)):
            continue
        if allowed(lines, i, "simd-isolation"):
            continue
        findings.append(Finding(
            path, i + 1, "simd-isolation",
            "x86 vector intrinsics outside src/core/simd/ — use the kernel "
            "table (core/simd/kernels.h) so the portable build stays "
            "ISA-free", line))
    return findings


CHECKS = (
    check_sync_comments,
    check_parallel_hot,
    check_metrics_hot,
    check_banned,
    check_header_guard,
    check_include_order,
    check_naked_new,
    check_durability,
    check_simd_isolation,
)


def lint_file(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"fsim-lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    lines = text.splitlines()
    findings = []
    for check in CHECKS:
        findings.extend(check(path, lines))
    return findings


def collect_files(paths: list[str]) -> list[Path]:
    if paths:
        out = []
        for p in paths:
            path = Path(p)
            if not path.is_absolute():
                path = REPO_ROOT / path
            if path.is_dir():
                for suffix in HEADER_SUFFIXES | SOURCE_SUFFIXES:
                    out.extend(sorted(path.rglob(f"*{suffix}")))
            elif path.exists():
                out.append(path)
            else:
                print(f"fsim-lint: no such file: {p}", file=sys.stderr)
                sys.exit(2)
        return out
    out = []
    for top in LINT_DIRS:
        root = REPO_ROOT / top
        if not root.is_dir():
            continue
        for suffix in HEADER_SUFFIXES | SOURCE_SUFFIXES:
            out.extend(sorted(root.rglob(f"*{suffix}")))
    return out


def load_baseline() -> dict[str, int]:
    if not BASELINE_PATH.exists():
        return {}
    try:
        data = json.loads(BASELINE_PATH.read_text())
    except json.JSONDecodeError as e:
        print(f"fsim-lint: malformed baseline {BASELINE_PATH}: {e}",
              file=sys.stderr)
        sys.exit(2)
    return {str(k): int(v) for k, v in data.get("findings", {}).items()}


def save_baseline(findings: list[Finding]) -> None:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.key()] = counts.get(f.key(), 0) + 1
    payload = {
        "comment": "fsim-lint grandfathered findings; regenerate with "
                   "scripts/fsim_lint.py --update-baseline",
        "findings": dict(sorted(counts.items())),
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: the lint roots)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings as errors too")
    args = parser.parse_args(argv)

    findings: list[Finding] = []
    for path in collect_files(args.paths):
        findings.extend(lint_file(path))

    if args.update_baseline:
        save_baseline(findings)
        print(f"fsim-lint: baseline updated with {len(findings)} finding(s)")
        return 0

    baseline = {} if args.no_baseline else load_baseline()
    remaining = dict(baseline)
    new: list[Finding] = []
    for f in findings:
        if remaining.get(f.key(), 0) > 0:
            remaining[f.key()] -= 1
        else:
            new.append(f)

    for f in new:
        print(f)
    if new:
        print(f"fsim-lint: {len(new)} new violation(s) "
              f"({len(findings) - len(new)} baselined)", file=sys.stderr)
        return 1
    print(f"fsim-lint: clean ({len(findings)} baselined finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
